package training

import (
	"fmt"
	"strconv"
	"sync"

	"gemini/internal/netsim"
	"gemini/internal/profile"
	"gemini/internal/simclock"
)

// OpKind classifies timeline operations.
type OpKind int

const (
	// OpAllGather is a ZeRO-3 parameter all-gather (network).
	OpAllGather OpKind = iota
	// OpReduceScatter is a gradient reduce-scatter (network).
	OpReduceScatter
	// OpCompute is a forward/backward compute step (GPU).
	OpCompute
	// OpUpdate is the optimizer step at iteration end (GPU, no network).
	OpUpdate
)

func (k OpKind) String() string {
	switch k {
	case OpAllGather:
		return "all-gather"
	case OpReduceScatter:
		return "reduce-scatter"
	case OpCompute:
		return "compute"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// TimedOp is one operation in the per-iteration timeline, with times
// relative to iteration start.
type TimedOp struct {
	Kind       OpKind
	Start, End simclock.Duration
	Label      string
	// Bytes is the network payload for communication ops (the logical
	// collective size, before the efficiency inflation).
	Bytes float64
}

// Duration returns the op's length.
func (op TimedOp) Duration() simclock.Duration { return op.End - op.Start }

// Timeline is the analytic per-iteration schedule of one machine. All
// machines run the same timeline (static synchronous training).
type Timeline struct {
	Config    Config
	Ops       []TimedOp
	Iteration simclock.Duration
}

// prefetchDepth is how many layers ahead the communication stream may run
// past compute — ZeRO-3's parameter prefetch window.
const prefetchDepth = 2

// layerLabels holds the interned label strings for one layer's timeline
// ops. Labels depend only on the layer index, never on the config, so
// they are built once per distinct layer depth and shared by every
// timeline — repeated BuildTimeline calls (config sweeps, placement
// tables, stress campaigns) allocate no label strings.
type layerLabels struct {
	fwd, agFwd          string
	bwd, agBwd, rsLabel string
}

var (
	labelMu    sync.Mutex
	labelCache []layerLabels
)

// labelsFor returns interned labels for layers 0..layers-1. The returned
// slice is a read-only snapshot; strings are immutable and safe to share
// across goroutines.
func labelsFor(layers int) []layerLabels {
	labelMu.Lock()
	defer labelMu.Unlock()
	for l := len(labelCache); l < layers; l++ {
		n := strconv.Itoa(l)
		labelCache = append(labelCache, layerLabels{
			fwd: "fwd" + n, agFwd: "ag-fwd" + n,
			bwd: "bwd" + n, agBwd: "ag-bwd" + n, rsLabel: "rs-bwd" + n,
		})
	}
	return labelCache[:layers:layers]
}

// BuildTimeline derives the iteration timeline: L forward steps (param
// all-gather then compute), L backward steps (all-gather for activation
// recomputation, 3× compute, then gradient reduce-scatter), and the
// communication-free optimizer update at the end.
func BuildTimeline(cfg Config) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	layers := m.Layers
	layerBytes := m.LayerFP16Bytes()
	collBW := cfg.collectiveBandwidth()
	alpha := cfg.Calib.CollectiveAlpha

	agTime := netsim.CollectiveTime(netsim.AllGather, cfg.Machines, layerBytes, collBW, alpha)
	rsTime := netsim.CollectiveTime(netsim.ReduceScatter, cfg.Machines, layerBytes, collBW, alpha)

	// Per-GPU compute: 2·P_layer·tokens forward; backward with activation
	// recomputation costs 3× that (one recompute forward + 2× backward).
	tokens := float64(m.SeqLen * m.MicroBatch)
	flopsPerLayerFwd := 2 * float64(m.NominalParams) / float64(layers) * tokens
	gpuRate := cfg.Instance.PeakFLOPsPerGPU * cfg.Calib.MFU
	fwdCompute := simclock.Duration(flopsPerLayerFwd / gpuRate)
	bwdCompute := 3 * fwdCompute

	updTime := simclock.Duration(cfg.ShardBytesPerMachine() / 1e9 * cfg.Calib.UpdatePhaseSecondsPerGB)

	// 2L all-gathers + 2L computes + L reduce-scatters + 1 update.
	tl := &Timeline{Config: cfg, Ops: make([]TimedOp, 0, 5*layers+1)}
	var commFree, compFree simclock.Duration
	compStarts := make([]simclock.Duration, 0, 2*layers)

	labels := labelsFor(layers)
	type step struct {
		label   string // interned compute label
		agLabel string // interned all-gather label
		rsLabel string // interned reduce-scatter label (backward only)
		comm    simclock.Duration // pre-compute all-gather
		compute simclock.Duration
		post    simclock.Duration // post-compute reduce-scatter (backward only)
	}
	steps := make([]step, 0, 2*layers)
	for l := 0; l < layers; l++ {
		steps = append(steps, step{label: labels[l].fwd, agLabel: labels[l].agFwd, comm: agTime, compute: fwdCompute})
	}
	for l := layers - 1; l >= 0; l-- {
		steps = append(steps, step{label: labels[l].bwd, agLabel: labels[l].agBwd, rsLabel: labels[l].rsLabel, comm: agTime, compute: bwdCompute, post: rsTime})
	}

	// Reduce-scatters become ready as their layer's backward compute
	// finishes; they are queued on the comm stream in order, interleaved
	// with all-gathers. We model one in-order comm stream: an op starts at
	// max(commFree, ready time). The queue is drained via an index head —
	// the backing array (capacity L, allocated once) is never re-sliced
	// per op.
	type pendingRS struct {
		ready simclock.Duration
		label string
	}
	rsQueue := make([]pendingRS, 0, layers)
	rsHead := 0

	flushRS := func(before simclock.Duration) {
		// Issue queued reduce-scatters that are ready before the given
		// horizon (the next all-gather's earliest start).
		for rsHead < len(rsQueue) {
			rs := rsQueue[rsHead]
			start := maxDur(commFree, rs.ready)
			if before >= 0 && start >= before {
				return
			}
			end := start + rsTime
			tl.Ops = append(tl.Ops, TimedOp{Kind: OpReduceScatter, Start: start, End: end, Label: rs.label, Bytes: layerBytes})
			commFree = end
			rsHead++
		}
	}

	for i, st := range steps {
		// Prefetch limit: the all-gather of step i may not start before
		// compute of step i−prefetchDepth has started.
		var gate simclock.Duration
		if i >= prefetchDepth {
			gate = compStarts[i-prefetchDepth]
		}
		flushRS(maxDur(commFree, gate))
		agStart := maxDur(commFree, gate)
		agEnd := agStart + st.comm
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpAllGather, Start: agStart, End: agEnd, Label: st.agLabel, Bytes: layerBytes})
		commFree = agEnd

		compStart := maxDur(compFree, agEnd)
		compEnd := compStart + st.compute
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpCompute, Start: compStart, End: compEnd, Label: st.label})
		compStarts = append(compStarts, compStart)
		compFree = compEnd

		if st.post > 0 {
			rsQueue = append(rsQueue, pendingRS{ready: compEnd, label: st.rsLabel})
		}
	}
	flushRS(-1)

	// Optimizer update needs all gradients reduced: start after both
	// streams drain.
	updStart := maxDur(compFree, commFree)
	updEnd := updStart + updTime
	tl.Ops = append(tl.Ops, TimedOp{Kind: OpUpdate, Start: updStart, End: updEnd, Label: "update"})
	tl.Iteration = updEnd
	return tl, nil
}

// MustBuildTimeline is BuildTimeline for known-good configs.
func MustBuildTimeline(cfg Config) *Timeline {
	tl, err := BuildTimeline(cfg)
	if err != nil {
		panic(err)
	}
	return tl
}

func maxDur(a, b simclock.Duration) simclock.Duration {
	if a > b {
		return a
	}
	return b
}

// CommOps returns the network operations of the timeline, in start order.
// It builds a fresh slice per call; loops over many iterations should
// call it once and reuse the result (ProfileWithJitter does).
func (tl *Timeline) CommOps() []TimedOp {
	n := 0
	for _, op := range tl.Ops {
		if op.Kind == OpAllGather || op.Kind == OpReduceScatter {
			n++
		}
	}
	out := make([]TimedOp, 0, n)
	for _, op := range tl.Ops {
		if op.Kind == OpAllGather || op.Kind == OpReduceScatter {
			out = append(out, op)
		}
	}
	return out
}

// Trace converts the timeline to a profiler iteration trace.
func (tl *Timeline) Trace() profile.IterationTrace {
	tr := profile.IterationTrace{Duration: tl.Iteration}
	for _, op := range tl.CommOps() {
		tr.Ops = append(tr.Ops, profile.Op{Start: op.Start, End: op.End, Label: op.Label})
	}
	return tr
}

// IdleTime returns the network idle time within the iteration.
func (tl *Timeline) IdleTime() simclock.Duration {
	tr := tl.Trace()
	return tl.Iteration - tr.BusyTime()
}

// Profile runs the §5.4 online profiling over the analytic timeline:
// it records `window` identical iterations and builds the averaged
// profile that feeds Algorithm 2.
func (tl *Timeline) Profile(window int) (*profile.Profile, error) {
	return tl.ProfileWithJitter(window, 0, 0)
}

// ProfileWithJitter profiles `window` iterations whose communication ops
// are stretched by a deterministic pseudo-random factor within ±frac —
// the cross-iteration variance §5.4 measures (<10% normalized standard
// deviation) and Algorithm 2's γ coefficient guards against.
func (tl *Timeline) ProfileWithJitter(window int, frac float64, seed int64) (*profile.Profile, error) {
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("training: jitter fraction %v out of [0,1)", frac)
	}
	rec, err := profile.NewRecorder(window)
	if err != nil {
		return nil, err
	}
	rng := newJitterSource(seed)
	// The timeline's op list is immutable: derive the comm ops once for
	// the whole window instead of rebuilding the slice every iteration.
	comm := tl.CommOps()
	var t simclock.Time
	for i := 0; i < window; i++ {
		// One stretch factor per iteration: the timeline's shape is
		// stable, only its pace varies (§5.4's observation).
		stretch := 1.0
		if frac > 0 {
			stretch = 1 + frac*(2*rng.next()-1)
		}
		rec.BeginIteration(t)
		var end simclock.Duration
		for _, op := range comm {
			s := simclock.Duration(float64(op.Start) * stretch)
			e := simclock.Duration(float64(op.End) * stretch)
			rec.RecordOp(t.Add(s), t.Add(e), op.Label)
			if e > end {
				end = e
			}
		}
		iterLen := simclock.Duration(float64(tl.Iteration) * stretch)
		if iterLen < end {
			iterLen = end
		}
		t = t.Add(iterLen)
		rec.EndIteration(t)
	}
	return rec.Build()
}

// jitterSource is a tiny deterministic uniform-[0,1) generator
// (SplitMix64-based), stable across Go releases.
type jitterSource struct{ state uint64 }

func newJitterSource(seed int64) *jitterSource {
	return &jitterSource{state: uint64(seed)*0x9E3779B97F4A7C15 + 1}
}

func (j *jitterSource) next() float64 {
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
