package training

import (
	"math"
	"testing"
)

// The §5.4 validation: profiling the executed iterations must agree with
// the analytic timeline the scheduler otherwise derives its spans from.
func TestOnlineProfileMatchesAnalytic(t *testing.T) {
	for _, cfg := range []Config{cfg40Bp3dn(t), cfg100B(t)} {
		analytic := MustBuildTimeline(cfg)
		online, err := ProfileFromExecution(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if online.Iterations != 3 {
			t.Fatalf("profiled %d iterations, want 3", online.Iterations)
		}
		// Iteration time within 2%.
		iterDiff := math.Abs((online.IterationTime - analytic.Iteration).Seconds()) /
			analytic.Iteration.Seconds()
		if iterDiff > 0.02 {
			t.Errorf("%s: online iteration %v vs analytic %v (%.1f%%)",
				cfg.Model.Name(), online.IterationTime, analytic.Iteration, iterDiff*100)
		}
		// Total idle within 10% (the executor's flow granularity differs
		// slightly from the analytic op granularity).
		idleDiff := math.Abs((online.TotalIdle() - analytic.IdleTime()).Seconds()) /
			analytic.IdleTime().Seconds()
		if idleDiff > 0.10 {
			t.Errorf("%s: online idle %v vs analytic %v (%.1f%%)",
				cfg.Model.Name(), online.TotalIdle(), analytic.IdleTime(), idleDiff*100)
		}
		// The executed timeline must be as stable across iterations as
		// the paper observes (<10% normalized standard deviation, §5.4).
		if online.NormalizedStdDev > 0.10 {
			t.Errorf("%s: online profile stddev %.3f, want <0.10", cfg.Model.Name(), online.NormalizedStdDev)
		}
	}
}

func TestOnlineProfileValidation(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	if _, err := ProfileFromExecution(cfg, 0); err == nil {
		t.Error("zero window accepted")
	}
	bad := cfg
	bad.Machines = 0
	if _, err := ProfileFromExecution(bad, 3); err == nil {
		t.Error("invalid config accepted")
	}
}
