package training

import (
	"fmt"
	"strconv"
	"sync"

	"gemini/internal/metrics"
	"gemini/internal/netsim"
	"gemini/internal/placement"
	"gemini/internal/profile"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/trace"
)

// ExecOptions configures checkpointing for the executor.
type ExecOptions struct {
	// Placement decides which machines receive each machine's shard.
	Placement *placement.Placement
	// Scheme is the interleaving scheme under test.
	Scheme schedule.Scheme
	// BufferBytes is the reserved GPU buffer R per machine (the paper
	// reserves 128 MB per GPU, 1 GB per 8-GPU machine).
	BufferBytes float64
	// BufferParts is the pipeline sub-buffer count p.
	BufferParts int
	// GPUBudgetBytes is the GPU memory available for checkpoint buffers;
	// schemes needing more report OOM.
	GPUBudgetBytes float64
	// Gamma is Algorithm 2's idle-span safety coefficient.
	Gamma float64
	// Iterations to execute (after one unmeasured warmup).
	Iterations int
	// ProfileWindow is the §5.4 online-profiling window.
	ProfileWindow int
	// Tracer, when non-nil, records the run's structured trace: iteration
	// and compute spans on cluster tracks, every finished flow on its
	// source machine's NIC track, copies on per-machine copier tracks.
	// Nil (the default) keeps the hot paths allocation-free.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives per-iteration observations under
	// the training.* namespace (iteration/checkpoint/idle histograms and
	// the Algorithm 2 idle-utilization gauge). Nil disables them free.
	Metrics *metrics.Registry
	// Timeline, when non-nil, is used instead of rebuilding the iteration
	// timeline from cfg. It must have been built from the same cfg (the
	// derivation cache passes its shared, read-only copy). The executor
	// never mutates it.
	Timeline *Timeline
	// Profile, when non-nil, is used instead of re-profiling Timeline.
	// It must match Timeline and ProfileWindow; the executor never
	// mutates it.
	Profile *profile.Profile
}

// DefaultExecOptions returns the paper's implementation parameters.
func DefaultExecOptions(p *placement.Placement, scheme schedule.Scheme) ExecOptions {
	return ExecOptions{
		Placement:      p,
		Scheme:         scheme,
		BufferBytes:    8 * 128e6, // 128 MB per GPU × 8 GPUs
		BufferParts:    4,
		GPUBudgetBytes: 8 * 256e6,
		Gamma:          0.9,
		Iterations:     3,
		ProfileWindow:  20,
	}
}

// ExecResult reports what the executor measured.
type ExecResult struct {
	// IterationTime is the mean measured iteration duration.
	IterationTime simclock.Duration
	// BaselineIteration is the analytic no-checkpoint iteration time.
	BaselineIteration simclock.Duration
	// CheckpointTime is the standalone checkpoint completion time t_ckpt:
	// how long writing the checkpoint to CPU memory takes when not spread
	// across idle spans (what Figures 11 and 12 report, and the t_ckpt of
	// Equation 1). Zero when the scheme takes no checkpoints.
	CheckpointTime simclock.Duration
	// CheckpointWallTime is the mean time from a checkpoint's first chunk
	// to its last commit under the interleaved schedule — it can span
	// most of the iteration because chunks wait for idle spans.
	CheckpointWallTime simclock.Duration
	// NetworkIdle is the mean per-iteration network idle time observed on
	// a machine NIC, checkpoint traffic included.
	NetworkIdle simclock.Duration
	// IdleUtilization is the fraction of checkpoint bytes released inside
	// profiled idle spans rather than after them — the executor-side view
	// of schedule.Plan.IdleUtilization. 1 for Baseline (no traffic to
	// hide), 0 for Blocking (training gated behind the full transfer).
	IdleUtilization float64
	// OOM reports that the scheme needed more GPU memory than available;
	// no iterations were executed.
	OOM bool
	// RequiredBufferBytes is the scheme's GPU buffer demand.
	RequiredBufferBytes float64
	// FabricCounters snapshots the network engine's counters after the
	// run: flow totals, recompute work, and the dirty-set hit rate.
	FabricCounters metrics.CounterSet
}

// Overhead returns the iteration-time overhead over the no-checkpoint
// baseline as a fraction (0.035 = 3.5%).
func (r *ExecResult) Overhead() float64 {
	if r.BaselineIteration == 0 {
		return 0
	}
	return float64((r.IterationTime - r.BaselineIteration) / r.BaselineIteration)
}

// Execute runs the training job on the fluid network simulator with the
// chosen checkpointing scheme and measures iteration time, checkpoint
// completion time and residual network idle time. Training collectives
// and checkpoint chunks share the machines' NICs, so interference (or its
// absence) is an outcome, not an assumption.
func Execute(cfg Config, opts ExecOptions) (*ExecResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Placement == nil {
		return nil, fmt.Errorf("training: executor needs a placement")
	}
	if opts.Placement.N != cfg.Machines {
		return nil, fmt.Errorf("training: placement over %d machines, cluster has %d", opts.Placement.N, cfg.Machines)
	}
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("training: need at least one iteration, got %d", opts.Iterations)
	}
	if opts.ProfileWindow < 1 {
		return nil, fmt.Errorf("training: need a positive profile window")
	}

	tl, prof := opts.Timeline, opts.Profile
	if tl == nil {
		var err error
		if tl, err = BuildTimeline(cfg); err != nil {
			return nil, err
		}
	}
	if prof == nil {
		var err error
		if prof, err = tl.Profile(opts.ProfileWindow); err != nil {
			return nil, err
		}
	}

	shard := cfg.ShardBytesPerMachine()
	params := schedule.Params{
		Spans:                prof.Spans,
		CheckpointBytes:      shard,
		Replicas:             opts.Placement.M,
		BufferBytes:          opts.BufferBytes,
		BufferParts:          opts.BufferParts,
		BandwidthBytesPerSec: cfg.Instance.NetworkBytesPerSec,
		Alpha:                cfg.Calib.CollectiveAlpha,
		Gamma:                opts.Gamma,
	}
	analysis, err := schedule.AnalyzeScheme(opts.Scheme, params, opts.GPUBudgetBytes, cfg.Instance.GPUToCPUBytesPerSec)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{
		BaselineIteration:   tl.Iteration,
		RequiredBufferBytes: analysis.RequiredBufferBytes,
		OOM:                 analysis.OOM,
	}
	if analysis.OOM {
		return res, nil
	}

	jobs, pipelined, gated, err := buildChunkJobs(opts.Scheme, params)
	if err != nil {
		return nil, err
	}
	res.IdleUtilization = idleUtilization(opts.Scheme, jobs, params)
	opts.Metrics.Gauge("training.idle_utilization").Set(res.IdleUtilization)
	if opts.Scheme != schedule.SchemeBaseline {
		res.CheckpointTime = StandaloneCheckpointTime(cfg, opts.Placement.M, opts.BufferBytes, opts.BufferParts)
	}
	ex := &executor{
		cfg: cfg, opts: opts, shard: shard,
		jobs: jobs, pipelined: pipelined, gated: gated,
		enabled: opts.Scheme != schedule.SchemeBaseline,
	}
	ex.run(res)
	return res, nil
}

// StandaloneCheckpointTime returns t_ckpt: the time to complete one
// checkpoint to CPU memory on an otherwise idle network — the m−1 remote
// replicas pipelined through R/p-sized chunks (transfer at wire speed,
// per-chunk startup latency, one trailing receiver copy), overlapped with
// the local GPU→CPU shard copy.
func StandaloneCheckpointTime(cfg Config, replicas int, bufferBytes float64, bufferParts int) simclock.Duration {
	shard := cfg.ShardBytesPerMachine()
	localCopy := simclock.Duration(shard / cfg.Instance.GPUToCPUBytesPerSec)
	remote := float64(replicas-1) * shard
	if remote == 0 {
		return localCopy
	}
	chunk := bufferBytes / float64(bufferParts)
	chunks := simclock.Duration(0)
	if chunk > 0 {
		chunks = simclock.Duration(float64(int((remote+chunk-1)/chunk))) * cfg.Calib.CollectiveAlpha
	}
	transfer := simclock.Duration(remote/cfg.Instance.NetworkBytesPerSec) + chunks
	trailingCopy := simclock.Duration(minFloat(chunk, remote) / cfg.Instance.GPUToCPUBytesPerSec)
	return maxDur(transfer+trailingCopy, localCopy)
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MustExecute is Execute for known-good configurations.
func MustExecute(cfg Config, opts ExecOptions) *ExecResult {
	res, err := Execute(cfg, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// chunkJob is one checkpoint chunk each machine must send to one of its
// peers, releasable at an offset within the iteration.
type chunkJob struct {
	replica   int // index into PeersOf(machine)
	bytes     float64
	notBefore simclock.Duration
}

// buildChunkJobs turns the scheme + Algorithm 2 parameters into the
// per-machine chunk schedule (identical across machines by symmetry),
// plus the pipelining and gating behavior.
func buildChunkJobs(scheme schedule.Scheme, params schedule.Params) (jobs []chunkJob, pipelined, gated bool, err error) {
	remote := params.Replicas - 1
	switch scheme {
	case schedule.SchemeBaseline:
		return nil, false, false, nil
	case schedule.SchemeBlocking:
		// Replicas streamed up front through the chunked buffer without
		// pipelining; training gated behind the full checkpoint.
		chunk := params.BufferBytes / float64(params.BufferParts)
		for r := 0; r < remote; r++ {
			remain := params.CheckpointBytes
			for remain > 0 {
				sz := chunk
				if sz > remain {
					sz = remain
				}
				remain -= sz
				jobs = append(jobs, chunkJob{replica: r, bytes: sz})
			}
		}
		return jobs, false, true, nil
	case schedule.SchemeNaive:
		// One partition per idle span, sized to the span's capacity.
		remainPerReplica := params.CheckpointBytes
		replica := 0
		for _, span := range params.Spans {
			if replica >= remote {
				break
			}
			carry := (simclock.Duration(params.Gamma)*span.Length - params.Alpha).Seconds() * params.BandwidthBytesPerSec
			if carry <= 0 {
				continue
			}
			size := carry
			if size > remainPerReplica {
				size = remainPerReplica
			}
			jobs = append(jobs, chunkJob{replica: replica, bytes: size, notBefore: span.Offset})
			remainPerReplica -= size
			if remainPerReplica == 0 {
				replica++
				remainPerReplica = params.CheckpointBytes
			}
		}
		// Leftover (spans exhausted) goes at the end, unpipelined.
		for replica < remote {
			jobs = append(jobs, chunkJob{replica: replica, bytes: remainPerReplica, notBefore: lastOffset(params)})
			replica++
			remainPerReplica = params.CheckpointBytes
		}
		return jobs, false, false, nil
	case schedule.SchemeNoPipeline, schedule.SchemeGemini:
		plan, err := schedule.Partition(params)
		if err != nil {
			return nil, false, false, err
		}
		for _, c := range plan.Chunks {
			nb := lastOffset(params)
			if c.Span < len(params.Spans) {
				nb = params.Spans[c.Span].Offset
			}
			jobs = append(jobs, chunkJob{replica: c.Replica, bytes: c.Bytes, notBefore: nb})
		}
		// A single buffer cannot overlap its own copy with the next
		// receive, so p=1 degenerates to the unpipelined behavior even
		// under the GEMINI scheme.
		return jobs, scheme == schedule.SchemeGemini && params.BufferParts > 1, false, nil
	default:
		return nil, false, false, fmt.Errorf("training: unknown scheme %v", scheme)
	}
}

// idleUtilization mirrors schedule.Plan.IdleUtilization over the
// executor's realized job list: the fraction of checkpoint bytes whose
// release offset falls inside a profiled idle span. Baseline moves no
// bytes (vacuously 1); Blocking gates training behind the transfer, so
// nothing is hidden (0).
func idleUtilization(scheme schedule.Scheme, jobs []chunkJob, params schedule.Params) float64 {
	switch scheme {
	case schedule.SchemeBaseline:
		return 1
	case schedule.SchemeBlocking:
		return 0
	}
	last := lastOffset(params)
	var total, inSpan float64
	for _, j := range jobs {
		total += j.bytes
		if j.notBefore < last {
			inSpan += j.bytes
		}
	}
	if total == 0 {
		return 1
	}
	return inSpan / total
}

func lastOffset(params schedule.Params) simclock.Duration {
	if len(params.Spans) == 0 {
		return 0
	}
	last := params.Spans[len(params.Spans)-1]
	return last.Offset + last.Length
}

// execScratch is the pooled per-run arena: every slice the executor
// needs per run or per iteration, recycled across Execute calls so a
// warm campaign run reuses the backings instead of reallocating them.
// The engine, fabric, and copiers themselves are per-run (they are bound
// to one simclock engine), but their container slices recycle.
type execScratch struct {
	computeDur                    []simclock.Duration
	agDone, compStarted, compDone []bool
	copiers                       []*netsim.Copier
	iterTimes, ckptTimes, idleTimes []simclock.Duration
}

var execScratchPool = sync.Pool{New: func() any { return new(execScratch) }}

// resetBools returns b resized to n with every element false, growing
// the backing only when needed.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// agStepCache interns the executor's "ag<step>" collective labels, the
// same way labelsFor interns the timeline's per-layer labels: they
// depend only on the step index, so one slice serves every run.
var (
	agStepMu    sync.Mutex
	agStepCache []string
)

func agStepLabels(n int) []string {
	agStepMu.Lock()
	defer agStepMu.Unlock()
	for i := len(agStepCache); i < n; i++ {
		agStepCache = append(agStepCache, "ag"+strconv.Itoa(i))
	}
	return agStepCache[:n:n]
}

// executor carries per-run simulation state.
type executor struct {
	cfg       Config
	opts      ExecOptions
	shard     float64
	jobs      []chunkJob
	pipelined bool
	gated     bool
	enabled   bool
	observer  *flowObserver // set during online profiling runs

	engine  *simclock.Engine
	fabric  *netsim.Fabric
	copiers []*netsim.Copier
	scratch *execScratch

	iterTrack *trace.Track // nil = untraced
	compTrack *trace.Track

	iterStart  simclock.Time
	ckptStart  simclock.Time
	ckptSeen   bool
	ckptDone   simclock.Time
	copiedLeft float64
	gateClosed bool
	pump       func()
}

func (ex *executor) run(res *ExecResult) {
	n := ex.cfg.Machines
	ex.engine = simclock.NewEngine()
	ex.fabric = netsim.MustNewFabric(ex.engine, n, netsim.Config{
		EgressBytesPerSec: ex.cfg.Instance.NetworkBytesPerSec,
		Alpha:             ex.cfg.Calib.CollectiveAlpha,
	})
	sc := execScratchPool.Get().(*execScratch)
	ex.scratch = sc
	defer func() {
		// Drop the copier pointers (they hold the dead engine alive) but
		// keep every backing array for the next run.
		for i := range sc.copiers {
			sc.copiers[i] = nil
		}
		execScratchPool.Put(sc)
	}()
	if cap(sc.copiers) >= n {
		ex.copiers = sc.copiers[:n]
	} else {
		ex.copiers = make([]*netsim.Copier, n)
	}
	sc.copiers = ex.copiers
	for i := range ex.copiers {
		ex.copiers[i] = netsim.MustNewCopier(ex.engine, ex.cfg.Instance.GPUToCPUBytesPerSec)
	}
	if tr := ex.opts.Tracer; tr.Enabled() {
		tr.SetNow(ex.engine.Now)
		ex.fabric.SetTracer(tr)
		for i := range ex.copiers {
			ex.copiers[i].SetTrack(tr.Track(fmt.Sprintf("machine-%d", i), "copier"))
		}
		ex.iterTrack = tr.Track("cluster", "iteration")
		ex.compTrack = tr.Track("cluster", "compute")
	}

	// Nil-registry instruments no-op, so the untracked path stays free.
	iterHist := ex.opts.Metrics.Histogram("training.iteration_seconds")
	ckptHist := ex.opts.Metrics.Histogram("training.ckpt_wall_seconds")
	idleHist := ex.opts.Metrics.Histogram("training.network_idle_seconds")
	iterCount := ex.opts.Metrics.Counter("training.iterations")

	iterTimes := sc.iterTimes[:0]
	ckptTimes := sc.ckptTimes[:0]
	idleTimes := sc.idleTimes[:0]
	total := ex.opts.Iterations + 1 // one warmup
	for iter := 0; iter < total; iter++ {
		ex.iterStart = ex.engine.Now()
		ex.ckptSeen = false
		ex.ckptStart, ex.ckptDone = 0, 0
		ex.fabric.ResetBusyTime()
		ex.startIteration()
		ex.engine.RunAll()
		iterLen := ex.engine.Now().Sub(ex.iterStart)
		if ex.iterTrack.Enabled() {
			args := fmt.Sprintf("iter=%d", iter)
			if iter == 0 {
				args = "iter=0 warmup=true"
			}
			ex.iterTrack.SpanArgs(trace.CatTraining, "iteration", ex.iterStart, ex.engine.Now(), args)
		}
		if iter == 0 {
			continue
		}
		iterTimes = append(iterTimes, iterLen)
		iterCount.Inc()
		iterHist.Observe(iterLen.Seconds())
		if ex.ckptDone > ex.ckptStart {
			ckptTimes = append(ckptTimes, ex.ckptDone.Sub(ex.ckptStart))
			ckptHist.Observe(ex.ckptDone.Sub(ex.ckptStart).Seconds())
		}
		idleTimes = append(idleTimes, iterLen-ex.fabric.BusyTime(0))
		idleHist.Observe((iterLen - ex.fabric.BusyTime(0)).Seconds())
	}
	res.IterationTime = meanDur(iterTimes)
	if len(ckptTimes) > 0 {
		res.CheckpointWallTime = meanDur(ckptTimes)
	}
	res.NetworkIdle = meanDur(idleTimes)
	res.FabricCounters = ex.fabric.Stats().Counters()
	sc.iterTimes, sc.ckptTimes, sc.idleTimes = iterTimes, ckptTimes, idleTimes
}

func meanDur(ds []simclock.Duration) simclock.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum simclock.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / simclock.Duration(len(ds))
}

// startIteration wires one iteration's dependency graph. All machines
// march in lockstep (synchronous training), so the collective sequence is
// shared: a collective is N simultaneous ring flows and completes when
// the slowest finishes. Compute runs on a serial per-machine stream
// (symmetric, so modeled once). Checkpoint chunk senders run per machine
// and contend with the collectives on the fabric.
func (ex *executor) startIteration() {
	cfg := ex.cfg
	n := cfg.Machines
	L := cfg.Model.Layers
	layerBytes := cfg.Model.LayerFP16Bytes()

	// Effective ring-flow bytes: one uncontended flow per machine must
	// take the collective's analytic time minus the startup latency.
	effBytes := func(kind netsim.CollectiveKind) float64 {
		t := netsim.CollectiveTime(kind, n, layerBytes, cfg.collectiveBandwidth(), cfg.Calib.CollectiveAlpha)
		payload := (t - cfg.Calib.CollectiveAlpha).Seconds() * cfg.Instance.NetworkBytesPerSec
		if payload < 0 {
			payload = 0
		}
		return payload
	}
	agBytes := effBytes(netsim.AllGather)
	rsBytes := effBytes(netsim.ReduceScatter)

	// Two in-order comm queues share one channel: all-gathers (gated by
	// the prefetch window) and reduce-scatters (ready when their layer's
	// backward compute finishes). Ready reduce-scatters take priority,
	// matching BuildTimeline's stream semantics.
	sc := ex.scratch
	computeDur := sc.computeDur[:0]
	tokens := float64(cfg.Model.SeqLen * cfg.Model.MicroBatch)
	fwd := simclock.Duration(2 * float64(cfg.Model.NominalParams) / float64(L) * tokens /
		(cfg.Instance.PeakFLOPsPerGPU * cfg.Calib.MFU))
	for l := 0; l < L; l++ {
		computeDur = append(computeDur, fwd)
	}
	for l := 0; l < L; l++ {
		computeDur = append(computeDur, 3*fwd)
	}
	sc.computeDur = computeDur
	steps := 2 * L // compute/all-gather step count
	agNext, rsNext := 0, 0
	agDone := resetBools(sc.agDone, steps)
	commInFlight := false
	compNext := 0
	compBusy := false
	compStarted := resetBools(sc.compStarted, steps)
	compDone := resetBools(sc.compDone, steps)
	sc.agDone, sc.compStarted, sc.compDone = agDone, compStarted, compDone
	updateStarted := false
	layerLbls := labelsFor(L)
	agLbls := agStepLabels(steps)

	ex.gateClosed = ex.gated

	startCollective := func(label string, bytes float64, done func()) {
		remaining := n
		var observe func(*netsim.Flow)
		if ex.observer != nil {
			observe = ex.observer.observe(label, ex.engine.Now())
		}
		// One callback shared by all n ring flows; machine 0's flow feeds
		// the online profiler.
		onDone := func(fl *netsim.Flow) {
			if observe != nil && fl.Src == 0 {
				observe(fl)
			}
			remaining--
			if remaining == 0 {
				done()
			}
		}
		for i := 0; i < n; i++ {
			ex.fabric.StartFlow(i, (i+1)%n, bytes, label, onDone)
		}
	}

	var pump func()
	pump = func() {
		if ex.gateClosed {
			return
		}
		// Comm channel: prefer a ready reduce-scatter, else the next
		// all-gather whose prefetch gate is open.
		if !commInFlight {
			switch {
			case rsNext < L && compDone[L+rsNext]:
				l := rsNext
				rsNext++
				commInFlight = true
				startCollective(layerLbls[l].rsLabel, rsBytes, func() {
					commInFlight = false
					pump()
				})
			case agNext < steps && (agNext < prefetchDepth || compStarted[agNext-prefetchDepth]):
				c := agNext
				agNext++
				commInFlight = true
				startCollective(agLbls[c], agBytes, func() {
					agDone[c] = true
					commInFlight = false
					pump()
				})
			}
		}
		// Compute stream.
		if !compBusy && compNext < steps && agDone[compNext] {
			c := compNext
			compNext++
			compBusy = true
			compStarted[c] = true
			compStart := ex.engine.Now()
			ex.engine.After(computeDur[c], func() {
				compBusy = false
				compDone[c] = true
				if ex.compTrack.Enabled() {
					name := fmt.Sprintf("fwd%d", c)
					if c >= L {
						name = fmt.Sprintf("bwd%d", c-L)
					}
					ex.compTrack.Span(trace.CatTraining, name, compStart, ex.engine.Now())
				}
				pump()
			})
		}
		// Update phase once both streams drain.
		if !updateStarted && compNext == steps && !compBusy &&
			agNext == steps && rsNext == L && !commInFlight {
			updateStarted = true
			upd := simclock.Duration(ex.shard / 1e9 * cfg.Calib.UpdatePhaseSecondsPerGB)
			updStart := ex.engine.Now()
			ex.engine.After(upd, func() {
				ex.compTrack.Span(trace.CatTraining, "update", updStart, ex.engine.Now())
			})
		}
	}
	ex.pump = pump
	ex.startCheckpoint()
	pump()
}

// startCheckpoint launches the per-machine checkpoint senders and the
// local GPU→CPU shard copies.
func (ex *executor) startCheckpoint() {
	if !ex.enabled {
		return
	}
	n := ex.cfg.Machines
	// Bytes to copy D2H across the cluster: every machine copies its own
	// shard locally plus every received remote chunk.
	remoteBytes := float64(ex.opts.Placement.M-1) * ex.shard
	ex.copiedLeft = float64(n) * (ex.shard + remoteBytes)
	if ex.copiedLeft == 0 {
		return
	}

	markActivity := func() {
		if !ex.ckptSeen {
			ex.ckptSeen = true
			ex.ckptStart = ex.engine.Now()
		}
	}
	copied := func(bytes float64) {
		ex.copiedLeft -= bytes
		if ex.copiedLeft < 1e-6 {
			ex.ckptDone = ex.engine.Now()
			if ex.gateClosed {
				ex.gateClosed = false
				ex.pump()
			}
		}
	}

	chunkSize := ex.opts.BufferBytes / float64(ex.opts.BufferParts)
	for machine := 0; machine < n; machine++ {
		machine := machine
		// Local shard copy, partitioned like the remote chunks (§5.3
		// "Move checkpoints from GPU to local CPU").
		remain := ex.shard
		for remain > 0 {
			sz := chunkSize
			if sz > remain {
				sz = remain
			}
			remain -= sz
			ex.engine.After(0, func() {
				markActivity()
				ex.copiers[machine].Submit(sz, "local-ckpt", func(cp *netsim.Copy) { copied(cp.Bytes) })
			})
		}

		peers := ex.opts.Placement.PeersOf(machine)
		if len(peers) == 0 || len(ex.jobs) == 0 {
			continue
		}
		// Sequential chunk sender: one transfer in flight; the next starts
		// when the previous transfer (pipelined) or its receiver copy
		// (unpipelined) finishes, and never before the chunk's release
		// offset.
		idx := 0
		var sendNext func()
		sendNext = func() {
			if idx >= len(ex.jobs) {
				return
			}
			job := ex.jobs[idx]
			release := ex.iterStart.Add(job.notBefore)
			if ex.engine.Now() < release {
				ex.engine.At(release, sendNext)
				return
			}
			idx++
			dst := peers[job.replica%len(peers)]
			markActivity()
			ex.fabric.StartFlow(machine, dst, job.bytes, "ckpt-chunk", func(fl *netsim.Flow) {
				ex.copiers[dst].Submit(job.bytes, "remote-ckpt", func(cp *netsim.Copy) {
					copied(cp.Bytes)
					if !ex.pipelined {
						sendNext()
					}
				})
				if ex.pipelined {
					sendNext()
				}
			})
		}
		ex.engine.After(0, sendNext)
	}
}
