package training

import (
	"testing"

	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/placement"
	"gemini/internal/schedule"
	"gemini/internal/trace"
)

// The tracing-overhead pair: the same executor run with and without a
// tracer attached. The delta is the full cost of span recording across
// training, the fabric, and the copiers; EXPERIMENTS.md quotes it.
func benchExecute(b *testing.B, traced bool) {
	cfg := MustNewConfig(model.MustByName("GPT-2 40B"), cluster.MustInstance("p3dn.24xlarge"), 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), schedule.SchemeGemini)
		opts.Iterations = 2
		if traced {
			opts.Tracer = trace.NewTracer(nil)
		}
		if _, err := Execute(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteUntraced(b *testing.B) { benchExecute(b, false) }
func BenchmarkExecuteTraced(b *testing.B)   { benchExecute(b, true) }
