package training

import (
	"strings"
	"testing"

	"gemini/internal/schedule"
)

func TestRenderTimelineShowsAllRows(t *testing.T) {
	cfg := cfg100B(t)
	tl := MustBuildTimeline(cfg)
	prof, err := tl.Profile(3)
	if err != nil {
		t.Fatal(err)
	}
	plan := schedule.MustPartition(schedule.Params{
		Spans:                prof.Spans,
		CheckpointBytes:      cfg.ShardBytesPerMachine(),
		Replicas:             2,
		BufferBytes:          8 * 128e6,
		BufferParts:          4,
		BandwidthBytesPerSec: cfg.Instance.NetworkBytesPerSec,
		Alpha:                cfg.Calib.CollectiveAlpha,
		Gamma:                0.9,
	})
	out := RenderTimeline(tl, plan, 80)
	for _, want := range []string{"compute", "network", "ckpt", "█", "▓", "U", "C"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The checkpoint row must only mark idle cells: no cell may be both
	// '▓' on the network row and 'C' on the ckpt row.
	lines := strings.Split(out, "\n")
	var netRow, ckptRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "network") {
			netRow = l
		}
		if strings.HasPrefix(l, "ckpt") {
			ckptRow = l
		}
	}
	netCells := []rune(netRow)
	for i, c := range ckptRow {
		if c == 'C' && i < len(netCells) && (netCells[i] == '▓' || netCells[i] == '▒') {
			t.Fatalf("checkpoint chunk overlaps network traffic at cell %d:\n%s", i, out)
		}
	}
}

func TestRenderTimelineDegenerate(t *testing.T) {
	out := RenderTimeline(&Timeline{}, nil, 5)
	if !strings.Contains(out, "empty") {
		t.Fatalf("empty timeline render: %q", out)
	}
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	out = RenderTimeline(tl, nil, 0) // clamped width
	if !strings.Contains(out, "compute") || strings.Contains(out, "ckpt ") {
		t.Fatalf("nil-plan render wrong:\n%s", out)
	}
}
