package training

import (
	"math"
	"testing"

	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/simclock"
)

func cfg100B(t *testing.T) Config {
	t.Helper()
	return MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), 16)
}

func cfg40Bp3dn(t *testing.T) Config {
	t.Helper()
	return MustNewConfig(model.MustByName("GPT-2 40B"), cluster.MustInstance("p3dn.24xlarge"), 16)
}

func TestTimelineCalibrationGPT2100B(t *testing.T) {
	// The paper's anchor: GPT-2 100B on 16 p4d.24xlarge runs ≈62 s
	// iterations (§7.2) with ≈12 s of network idle time (Fig. 8).
	tl := MustBuildTimeline(cfg100B(t))
	iter := tl.Iteration.Seconds()
	if iter < 55 || iter > 70 {
		t.Errorf("iteration time %.1fs, want ≈62s", iter)
	}
	idle := tl.IdleTime().Seconds()
	if idle < 8 || idle > 18 {
		t.Errorf("network idle time %.1fs, want ≈12s", idle)
	}
}

func TestTimelineCalibrationP3dn40B(t *testing.T) {
	// Fig. 13a: GPT-2 40B on 16 p3dn.24xlarge ≈ 40–45 s iterations.
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	iter := tl.Iteration.Seconds()
	if iter < 33 || iter > 52 {
		t.Errorf("iteration time %.1fs, want ≈42s", iter)
	}
	if idle := tl.IdleTime().Seconds(); idle <= 0 {
		t.Errorf("idle time %.1fs, want positive", idle)
	}
}

func TestTimelineOpsWellFormed(t *testing.T) {
	tl := MustBuildTimeline(cfg100B(t))
	L := tl.Config.Model.Layers
	var ag, rs, comp, upd int
	for _, op := range tl.Ops {
		if op.End < op.Start {
			t.Fatalf("op %s ends before it starts", op.Label)
		}
		if op.End > tl.Iteration+1e-9 {
			t.Fatalf("op %s (%v) extends past iteration end %v", op.Label, op.End, tl.Iteration)
		}
		switch op.Kind {
		case OpAllGather:
			ag++
		case OpReduceScatter:
			rs++
		case OpCompute:
			comp++
		case OpUpdate:
			upd++
		}
	}
	if ag != 2*L {
		t.Errorf("%d all-gathers, want %d (fwd+bwd per layer)", ag, 2*L)
	}
	if rs != L {
		t.Errorf("%d reduce-scatters, want %d", rs, L)
	}
	if comp != 2*L {
		t.Errorf("%d compute steps, want %d", comp, 2*L)
	}
	if upd != 1 {
		t.Errorf("%d update phases, want 1", upd)
	}
}

func TestTimelineComputeOpsSerial(t *testing.T) {
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	var prevEnd simclock.Duration
	for _, op := range tl.Ops {
		if op.Kind != OpCompute && op.Kind != OpUpdate {
			continue
		}
		if op.Start < prevEnd-1e-9 {
			t.Fatalf("compute op %s starts %v before previous ended %v", op.Label, op.Start, prevEnd)
		}
		prevEnd = op.End
	}
}

func TestTimelineCommOpsSerial(t *testing.T) {
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	var prevEnd simclock.Duration
	for _, op := range tl.CommOps() {
		if op.Start < prevEnd-1e-9 {
			t.Fatalf("comm op %s starts %v before previous ended %v (single comm stream)", op.Label, op.Start, prevEnd)
		}
		prevEnd = op.End
	}
}

func TestTimelineUpdatePhaseIsNetworkIdle(t *testing.T) {
	tl := MustBuildTimeline(cfg100B(t))
	var upd TimedOp
	for _, op := range tl.Ops {
		if op.Kind == OpUpdate {
			upd = op
		}
	}
	if upd.Duration() <= 0 {
		t.Fatal("update phase missing or empty")
	}
	for _, op := range tl.CommOps() {
		if op.End > upd.Start+1e-9 {
			t.Fatalf("comm op %s overlaps the update phase", op.Label)
		}
	}
}

func TestTimelineProfileStable(t *testing.T) {
	tl := MustBuildTimeline(cfg100B(t))
	prof, err := tl.Profile(20)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Iterations != 20 {
		t.Fatalf("profiled %d iterations, want 20", prof.Iterations)
	}
	if prof.NormalizedStdDev > 1e-6 {
		t.Fatalf("identical iterations yielded stddev %v", prof.NormalizedStdDev)
	}
	if math.Abs((prof.IterationTime - tl.Iteration).Seconds()) > 1e-6 {
		t.Fatalf("profiled iteration %v != timeline %v", prof.IterationTime, tl.Iteration)
	}
	if math.Abs((prof.TotalIdle() - tl.IdleTime()).Seconds()) > 1e-6 {
		t.Fatalf("profiled idle %v != timeline idle %v", prof.TotalIdle(), tl.IdleTime())
	}
}

func TestTimelineIdleFitsCheckpointTraffic(t *testing.T) {
	// The load-bearing claim of §7.2: the idle time accommodates one
	// remote checkpoint replica at wire speed for the 100B models.
	cfg := cfg100B(t)
	tl := MustBuildTimeline(cfg)
	shard := cfg.ShardBytesPerMachine()
	wireTime := shard / cfg.Instance.NetworkBytesPerSec
	if idle := tl.IdleTime().Seconds(); idle < wireTime {
		t.Fatalf("idle %.1fs cannot carry the %.1fs checkpoint transfer", idle, wireTime)
	}
}

func TestBiggerModelLongerIteration(t *testing.T) {
	it := cluster.MustInstance("p3dn.24xlarge")
	prev := simclock.Duration(0)
	for _, name := range []string{"GPT-2 10B", "GPT-2 20B", "GPT-2 40B"} {
		tl := MustBuildTimeline(MustNewConfig(model.MustByName(name), it, 16))
		if tl.Iteration <= prev {
			t.Fatalf("%s iteration %v not longer than previous %v", name, tl.Iteration, prev)
		}
		prev = tl.Iteration
	}
}

func TestFitsInGPUMemory(t *testing.T) {
	// 100B fits on 16 p4d; the paper says growing further OOMs.
	if !cfg100B(t).FitsInGPUMemory() {
		t.Error("GPT-2 100B should fit on 16 p4d machines")
	}
	big := MustNewConfig(model.Config{
		Family: model.GPT2, NominalParams: 200e9, HiddenSize: 8192, Intermediate: 32768,
		Layers: 248, AttentionHeads: 64, VocabSize: 50265, SeqLen: 512, MicroBatch: 8,
	}, cluster.MustInstance("p4d.24xlarge"), 16)
	if big.FitsInGPUMemory() {
		t.Error("a 200B model should not fit on 16 p4d machines")
	}
	// 40B fits on 16 p3dn (the largest the paper trains there); the 100B
	// configuration does not.
	if !cfg40Bp3dn(t).FitsInGPUMemory() {
		t.Error("GPT-2 40B should fit on 16 p3dn machines")
	}
	p3dn100 := MustNewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p3dn.24xlarge"), 16)
	if p3dn100.FitsInGPUMemory() {
		t.Error("GPT-2 100B should not fit on 16 p3dn machines")
	}
}

func TestConfigValidation(t *testing.T) {
	good := cfg100B(t)
	bad := good
	bad.Machines = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero machines accepted")
	}
	bad = good
	bad.Calib.MFU = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MFU accepted")
	}
	bad = good
	bad.Calib.CollectiveEfficiency = 2
	if err := bad.Validate(); err == nil {
		t.Error("efficiency > 1 accepted")
	}
	bad = good
	bad.Calib.CollectiveAlpha = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	bad = good
	bad.Calib.UpdatePhaseSecondsPerGB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative update cost accepted")
	}
	if _, err := BuildTimeline(bad); err == nil {
		t.Error("BuildTimeline accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuildTimeline on bad config did not panic")
		}
	}()
	MustBuildTimeline(bad)
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpAllGather: "all-gather", OpReduceScatter: "reduce-scatter",
		OpCompute: "compute", OpUpdate: "update", OpKind(9): "OpKind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestScalingStaysBounded(t *testing.T) {
	// Strong scaling of ZeRO-3 collectives degrades with N (the ring
	// latency term grows), but doubling the machines must not blow the
	// iteration time up by more than a modest factor at this scale.
	m := model.MustByName("GPT-2 100B")
	it := cluster.MustInstance("p4d.24xlarge")
	t16 := MustBuildTimeline(MustNewConfig(m, it, 16)).Iteration
	t32 := MustBuildTimeline(MustNewConfig(m, it, 32)).Iteration
	if t32 > t16*13/10 {
		t.Fatalf("32-machine iteration %v more than 30%% over 16-machine %v", t32, t16)
	}
}
