package training

import (
	"fmt"

	"gemini/internal/netsim"
	"gemini/internal/simclock"
)

// Parallelism selects the distribution strategy whose communication
// timeline the simulator generates. The paper evaluates GEMINI on ZeRO-3
// and names the other parallelisms as future work (§9); the alternative
// timelines here let Algorithm 2 schedule checkpoints into their —
// differently shaped — idle spans.
type Parallelism int

const (
	// ZeRO3 shards parameters, gradients and optimizer states across all
	// GPUs; every layer's forward and backward needs a parameter
	// all-gather, and gradients reduce-scatter (§5.1).
	ZeRO3 Parallelism = iota
	// DataParallel replicates the model; the network carries only the
	// per-layer gradient all-reduces overlapped with the backward pass,
	// leaving the entire forward pass as network idle time.
	DataParallel
	// PipelineParallel partitions layers into stages; the network carries
	// only small activation/gradient boundary tensors, and is almost
	// always idle.
	PipelineParallel
)

func (p Parallelism) String() string {
	switch p {
	case ZeRO3:
		return "zero-3"
	case DataParallel:
		return "data-parallel"
	case PipelineParallel:
		return "pipeline-parallel"
	default:
		return fmt.Sprintf("Parallelism(%d)", int(p))
	}
}

// BuildTimelineFor derives the per-iteration timeline under the given
// parallelism. ZeRO3 delegates to BuildTimeline.
func BuildTimelineFor(cfg Config, p Parallelism) (*Timeline, error) {
	switch p {
	case ZeRO3:
		return BuildTimeline(cfg)
	case DataParallel:
		return buildDataParallelTimeline(cfg)
	case PipelineParallel:
		return buildPipelineTimeline(cfg)
	default:
		return nil, fmt.Errorf("training: unknown parallelism %d", int(p))
	}
}

// buildDataParallelTimeline: forward is communication-free; the backward
// pass overlaps per-layer gradient all-reduces with compute; the update
// runs after the last all-reduce lands.
func buildDataParallelTimeline(cfg Config) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	L := m.Layers
	layerBytes := m.LayerFP16Bytes()
	arTime := netsim.CollectiveTime(netsim.AllReduce, cfg.Machines, layerBytes,
		cfg.collectiveBandwidth(), cfg.Calib.CollectiveAlpha)

	tokens := float64(m.SeqLen * m.MicroBatch)
	gpuRate := cfg.Instance.PeakFLOPsPerGPU * cfg.Calib.MFU
	fwd := simclock.Duration(2 * float64(m.NominalParams) / float64(L) * tokens / gpuRate)
	bwd := 2 * fwd // no recomputation: replicas hold activations

	tl := &Timeline{Config: cfg}
	var compFree, commFree simclock.Duration
	for l := 0; l < L; l++ {
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpCompute, Start: compFree, End: compFree + fwd,
			Label: fmt.Sprintf("fwd%d", l)})
		compFree += fwd
	}
	for l := L - 1; l >= 0; l-- {
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpCompute, Start: compFree, End: compFree + bwd,
			Label: fmt.Sprintf("bwd%d", l)})
		compFree += bwd
		// The layer's gradient bucket all-reduces as soon as its backward
		// completes, on the in-order comm stream.
		start := maxDur(commFree, compFree)
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpReduceScatter, Start: start, End: start + arTime,
			Label: fmt.Sprintf("ar-bwd%d", l), Bytes: layerBytes})
		commFree = start + arTime
	}
	updStart := maxDur(compFree, commFree)
	upd := simclock.Duration(cfg.ShardBytesPerMachine() / 1e9 * cfg.Calib.UpdatePhaseSecondsPerGB)
	tl.Ops = append(tl.Ops, TimedOp{Kind: OpUpdate, Start: updStart, End: updStart + upd, Label: "update"})
	tl.Iteration = updStart + upd
	return tl, nil
}

// buildPipelineTimeline approximates GPipe-style pipelining with
// 4·stages microbatches: each stage computes its layer slice per
// microbatch and exchanges small activation boundaries with neighbors.
// The timeline is the steady-state view of one interior stage.
func buildPipelineTimeline(cfg Config) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Model
	stages := cfg.Machines
	micro := 4 * stages // standard pipeline-efficiency choice
	tokensPerMicro := float64(m.SeqLen * m.MicroBatch)
	gpuRate := cfg.Instance.PeakFLOPsPerGPU * cfg.Calib.MFU

	// Per-microbatch, per-stage compute: the stage holds 1/stages of the
	// parameters; forward 2·P/stages·tokens, backward with recompute 3×.
	stageFwd := simclock.Duration(2 * float64(m.NominalParams) / float64(stages) * tokensPerMicro / float64(micro) / gpuRate)
	stageBwd := 3 * stageFwd

	// Boundary tensor: activations of one microbatch slice.
	boundaryBytes := float64(m.MicroBatch) / float64(micro) * float64(m.SeqLen) * float64(m.HiddenSize) * 2
	sendTime := netsim.TransferTime(boundaryBytes, cfg.Instance.NetworkBytesPerSec, cfg.Calib.CollectiveAlpha)

	tl := &Timeline{Config: cfg}
	var t simclock.Duration
	// Warmup bubble: the stage idles while the pipeline fills.
	t += simclock.Duration(stages-1) * (stageFwd + sendTime)
	// Steady state: micro forward+backward slots, each bracketed by the
	// two boundary transfers.
	for i := 0; i < micro; i++ {
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpAllGather, Start: t, End: t + sendTime,
			Label: fmt.Sprintf("recv-act%d", i), Bytes: boundaryBytes})
		t += sendTime
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpCompute, Start: t, End: t + stageFwd + stageBwd,
			Label: fmt.Sprintf("stage%d", i)})
		t += stageFwd + stageBwd
		tl.Ops = append(tl.Ops, TimedOp{Kind: OpReduceScatter, Start: t, End: t + sendTime,
			Label: fmt.Sprintf("send-grad%d", i), Bytes: boundaryBytes})
		t += sendTime
	}
	// Drain bubble, then the optimizer update.
	t += simclock.Duration(stages-1) * (stageBwd + sendTime)
	upd := simclock.Duration(cfg.ShardBytesPerMachine() / 1e9 * cfg.Calib.UpdatePhaseSecondsPerGB)
	tl.Ops = append(tl.Ops, TimedOp{Kind: OpUpdate, Start: t, End: t + upd, Label: "update"})
	tl.Iteration = t + upd
	return tl, nil
}
