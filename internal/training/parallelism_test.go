package training

import (
	"testing"

	"gemini/internal/schedule"
	"gemini/internal/simclock"
)

func TestParallelismString(t *testing.T) {
	names := map[Parallelism]string{
		ZeRO3: "zero-3", DataParallel: "data-parallel",
		PipelineParallel: "pipeline-parallel", Parallelism(9): "Parallelism(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestBuildTimelineForZeroDelegates(t *testing.T) {
	cfg := cfg100B(t)
	a := MustBuildTimeline(cfg)
	b, err := BuildTimelineFor(cfg, ZeRO3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iteration != b.Iteration {
		t.Fatalf("ZeRO3 delegation mismatch: %v vs %v", a.Iteration, b.Iteration)
	}
	if _, err := BuildTimelineFor(cfg, Parallelism(42)); err == nil {
		t.Fatal("unknown parallelism accepted")
	}
}

func TestDataParallelForwardIsNetworkIdle(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	tl, err := BuildTimelineFor(cfg, DataParallel)
	if err != nil {
		t.Fatal(err)
	}
	// The first comm op must not start before the whole forward pass
	// (L × fwd compute) has run.
	var firstComm simclock.Duration = -1
	var firstComputeEnd simclock.Duration
	computeSeen := 0
	for _, op := range tl.Ops {
		switch op.Kind {
		case OpReduceScatter, OpAllGather:
			if firstComm < 0 {
				firstComm = op.Start
			}
		case OpCompute:
			computeSeen++
			if computeSeen == cfg.Model.Layers {
				firstComputeEnd = op.End
			}
		}
	}
	if firstComm < firstComputeEnd {
		t.Fatalf("DP comm starts at %v, before forward ends at %v", firstComm, firstComputeEnd)
	}
	// The forward pass is a single large idle span Algorithm 2 can use.
	tr := tl.Trace()
	spans := tr.IdleSpans()
	if len(spans) == 0 || spans[0].Length < firstComputeEnd {
		t.Fatalf("DP idle spans %v lack the forward-pass gap (%v)", spans, firstComputeEnd)
	}
}

func TestDataParallelCheckpointFits(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	tl, err := BuildTimelineFor(cfg, DataParallel)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := tl.Profile(5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.Partition(schedule.Params{
		Spans:                prof.Spans,
		CheckpointBytes:      cfg.ShardBytesPerMachine(),
		Replicas:             2,
		BufferBytes:          8 * 128e6,
		BufferParts:          4,
		BandwidthBytesPerSec: cfg.Instance.NetworkBytesPerSec,
		Alpha:                cfg.Calib.CollectiveAlpha,
		Gamma:                0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fits {
		t.Fatalf("DP idle time (%v) should absorb the checkpoint", tl.IdleTime())
	}
}

func TestPipelineParallelMostlyIdle(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	tl, err := BuildTimelineFor(cfg, PipelineParallel)
	if err != nil {
		t.Fatal(err)
	}
	tr := tl.Trace()
	busy := tr.BusyTime()
	if frac := float64(busy / tl.Iteration); frac > 0.10 {
		t.Fatalf("pipeline network busy fraction %.2f, want tiny (boundary tensors only)", frac)
	}
	if tl.IdleTime() <= 0 {
		t.Fatal("no idle time")
	}
	// Ops are well formed and within the iteration.
	for _, op := range tl.Ops {
		if op.End < op.Start || op.End > tl.Iteration+1e-9 {
			t.Fatalf("malformed op %+v", op)
		}
	}
}

func TestPipelineBubbleGrowsWithStages(t *testing.T) {
	cfgA := cfg40Bp3dn(t)
	tlA, err := BuildTimelineFor(cfgA, PipelineParallel)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfgA
	cfgB.Machines = 32
	tlB, err := BuildTimelineFor(cfgB, PipelineParallel)
	if err != nil {
		t.Fatal(err)
	}
	// With 4·stages microbatches the bubble fraction (stages−1)/(4·stages
	// + stages − 1) is roughly constant, but per-stage compute halves, so
	// the iteration must shrink with more stages.
	if tlB.Iteration >= tlA.Iteration {
		t.Fatalf("32-stage iteration %v not shorter than 16-stage %v", tlB.Iteration, tlA.Iteration)
	}
}

func TestParallelismTimelinesProfileCleanly(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	for _, p := range []Parallelism{ZeRO3, DataParallel, PipelineParallel} {
		tl, err := BuildTimelineFor(cfg, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		prof, err := tl.Profile(3)
		if err != nil {
			t.Fatalf("%v profile: %v", p, err)
		}
		var total simclock.Duration
		for _, s := range prof.Spans {
			total += s.Length
		}
		if diff := (total - tl.IdleTime()).Seconds(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%v: profiled idle %v != timeline idle %v", p, total, tl.IdleTime())
		}
	}
}
