// Package training simulates ZeRO-3 distributed training at the machine
// granularity: the per-iteration compute/communication timeline whose
// idle spans GEMINI's scheduler fills (§5.1), a fluid-network executor
// that lets checkpoint/training interference emerge rather than be
// assumed (§7.4), and a long-horizon run simulator that reproduces the
// failure-recovery economics of §7.2–7.3.
package training

import (
	"fmt"

	"gemini/internal/cluster"
	"gemini/internal/model"
	"gemini/internal/simclock"
)

// Calibration holds the constants that map architecture-level quantities
// (FLOPs, parameter bytes) to simulated time. They are fit so the
// simulated testbed reproduces the paper's measured anchors:
//
//   - GPT-2 100B on 16× p4d.24xlarge: iteration ≈ 62 s with ≈ 12 s of
//     network idle time and a GEMINI checkpoint time < 3 s (§7.2, Fig. 7/8);
//   - GPT-2/RoBERTa/BERT 10B–40B on 16× p3dn.24xlarge: iteration times in
//     the 15–45 s band with idle time left over (Fig. 13).
//
// CollectiveEfficiency captures that NCCL collectives — many small
// latency-bound steps — achieve a fraction of wire bandwidth, while
// GEMINI's large point-to-point checkpoint chunks run near wire speed.
type Calibration struct {
	// MFU is the model FLOPs utilization of the compute phases.
	MFU float64
	// CollectiveEfficiency scales the NIC bandwidth for training
	// collectives (all-gather / reduce-scatter).
	CollectiveEfficiency float64
	// CollectiveAlpha is the startup latency per collective operation.
	CollectiveAlpha simclock.Duration
	// UpdatePhaseSecondsPerGB is the optimizer-step duration per GB of
	// per-machine checkpoint shard — the communication-free window at the
	// end of each iteration (Fig. 4's "Update").
	UpdatePhaseSecondsPerGB float64
}

// Validate checks calibration sanity.
func (c Calibration) Validate() error {
	switch {
	case c.MFU <= 0 || c.MFU > 1:
		return fmt.Errorf("training: MFU %v out of (0,1]", c.MFU)
	case c.CollectiveEfficiency <= 0 || c.CollectiveEfficiency > 1:
		return fmt.Errorf("training: collective efficiency %v out of (0,1]", c.CollectiveEfficiency)
	case c.CollectiveAlpha < 0:
		return fmt.Errorf("training: negative collective alpha")
	case c.UpdatePhaseSecondsPerGB < 0:
		return fmt.Errorf("training: negative update phase cost")
	}
	return nil
}

// DefaultCalibration returns the calibration fit for an instance type.
// The two testbed instance types carry measured fits; anything else gets
// a conservative generic fit.
func DefaultCalibration(it cluster.InstanceType) Calibration {
	switch it.Name {
	case "p4d.24xlarge":
		return Calibration{
			MFU:                     0.45,
			CollectiveEfficiency:    0.25,
			CollectiveAlpha:         simclock.Millisecond,
			UpdatePhaseSecondsPerGB: 0.13,
		}
	case "p3dn.24xlarge":
		return Calibration{
			MFU:                     0.40,
			CollectiveEfficiency:    0.50,
			CollectiveAlpha:         simclock.Millisecond,
			UpdatePhaseSecondsPerGB: 0.13,
		}
	default:
		return Calibration{
			MFU:                     0.40,
			CollectiveEfficiency:    0.30,
			CollectiveAlpha:         simclock.Millisecond,
			UpdatePhaseSecondsPerGB: 0.13,
		}
	}
}

// Config describes one training job.
type Config struct {
	Model    model.Config
	Instance cluster.InstanceType
	Machines int
	Calib    Calibration
}

// NewConfig assembles a training configuration with the default
// calibration for the instance type.
func NewConfig(m model.Config, it cluster.InstanceType, machines int) (Config, error) {
	cfg := Config{Model: m, Instance: it, Machines: machines, Calib: DefaultCalibration(it)}
	return cfg, cfg.Validate()
}

// MustNewConfig is NewConfig for known-good parameters.
func MustNewConfig(m model.Config, it cluster.InstanceType, machines int) Config {
	cfg, err := NewConfig(m, it, machines)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Instance.Validate(); err != nil {
		return err
	}
	if c.Machines < 1 {
		return fmt.Errorf("training: need at least one machine, got %d", c.Machines)
	}
	return c.Calib.Validate()
}

// Sharding returns the ZeRO-3 sharding shape of the job.
func (c Config) Sharding() model.Sharding {
	return model.Sharding{Machines: c.Machines, GPUsPerNode: c.Instance.GPUs}
}

// ShardBytesPerMachine is the per-machine checkpoint shard size — the C
// of Algorithm 2.
func (c Config) ShardBytesPerMachine() float64 {
	return c.Sharding().ShardBytesPerMachine(c.Model)
}

// collectiveBandwidth returns the effective per-machine bandwidth of
// training collectives.
func (c Config) collectiveBandwidth() float64 {
	return c.Instance.NetworkBytesPerSec * c.Calib.CollectiveEfficiency
}

// GPUMemoryDemandBytes estimates per-GPU memory demand: the ZeRO-3 shard
// of model states, the retained activations (with recomputation only
// layer inputs persist, times a workspace factor covering norm statistics
// and attention scratch), and a fixed framework overhead (CUDA context,
// NCCL buffers).
func (c Config) GPUMemoryDemandBytes() float64 {
	const (
		activationFactor  = 2.5
		frameworkOverhead = 3e9
	)
	states := c.Sharding().ResidentBytesPerGPU(c.Model)
	m := c.Model
	activations := float64(m.MicroBatch) * float64(m.SeqLen) * float64(m.HiddenSize) *
		float64(m.Layers) * 2 /* fp16 */ * activationFactor
	return states + activations + frameworkOverhead
}

// FitsInGPUMemory reports whether the job fits — the paper could not grow
// models past 100B on 16 p4d machines or 40B-class models far past that
// on p3dn (§7.2).
func (c Config) FitsInGPUMemory() bool {
	return c.GPUMemoryDemandBytes() <= float64(c.Instance.GPUMemBytes)*0.95
}
