package training

import (
	"testing"

	"gemini/internal/cluster"
	"gemini/internal/model"
)

func benchConfig(b *testing.B, machines int) Config {
	b.Helper()
	cfg, err := NewConfig(model.MustByName("GPT-2 100B"), cluster.MustInstance("p4d.24xlarge"), machines)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkBuildTimeline measures one timeline derivation — the per-config
// cost every profile, executor run, and placement table pays. Step labels
// are cached across builds, so steady-state builds allocate a small
// constant independent of prior calls.
func BenchmarkBuildTimeline(b *testing.B) {
	cfg := benchConfig(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTimeline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileWithJitter measures the §5.4 profiling loop over a
// large window — the second ROADMAP-named breakage point at 10k-machine
// scale. The comm-op list is derived once per profile, not once per
// window iteration.
func BenchmarkProfileWithJitter(b *testing.B) {
	tl := MustBuildTimeline(benchConfig(b, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tl.ProfileWithJitter(200, 0.05, 7); err != nil {
			b.Fatal(err)
		}
	}
}
