package training

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/schedule"
	"gemini/internal/simclock"
)

func TestJitteredProfileMeasuresVariance(t *testing.T) {
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	clean, err := tl.ProfileWithJitter(20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NormalizedStdDev > 1e-6 {
		t.Fatalf("zero jitter gave stddev %v", clean.NormalizedStdDev)
	}
	jittered, err := tl.ProfileWithJitter(20, 0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A ±8% pace jitter must register as a nonzero but sub-10% normalized
	// deviation — the band the paper reports (§5.4).
	if jittered.NormalizedStdDev <= 0 || jittered.NormalizedStdDev > 0.12 {
		t.Fatalf("jittered stddev %v, want in (0, 0.12]", jittered.NormalizedStdDev)
	}
	// Determinism per seed.
	again, err := tl.ProfileWithJitter(20, 0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.NormalizedStdDev != jittered.NormalizedStdDev {
		t.Fatal("same seed gave different profiles")
	}
}

func TestProfileWithJitterValidation(t *testing.T) {
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	if _, err := tl.ProfileWithJitter(5, -0.1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := tl.ProfileWithJitter(5, 1.0, 1); err == nil {
		t.Error("jitter ≥ 1 accepted")
	}
	if _, err := tl.ProfileWithJitter(0, 0.1, 1); err == nil {
		t.Error("zero window accepted")
	}
}

func TestAutoGammaBands(t *testing.T) {
	if g := schedule.AutoGamma(0); g != 1 {
		t.Fatalf("AutoGamma(0) = %v, want 1", g)
	}
	if g := schedule.AutoGamma(0.10); math.Abs(g-0.8) > 1e-12 {
		t.Fatalf("AutoGamma(0.10) = %v, want 0.8", g)
	}
	if g := schedule.AutoGamma(0.5); g != 0.5 {
		t.Fatalf("AutoGamma(0.5) = %v, want clamp at 0.5", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative stddev accepted")
		}
	}()
	schedule.AutoGamma(-1)
}

// The property the γ guard exists for: plan against the mean profile with
// AutoGamma, then realize iterations whose idle spans shrink by up to the
// profiled deviation — the per-span chunk traffic must still fit the
// shrunken spans (no new overflow beyond the plan's own).
func TestPropertyAutoGammaSurvivesShrunkenSpans(t *testing.T) {
	tl := MustBuildTimeline(cfg40Bp3dn(t))
	cfg := tl.Config
	f := func(seedRaw uint16, fracRaw uint8) bool {
		frac := float64(fracRaw%9) / 100 // 0–8% jitter
		prof, err := tl.ProfileWithJitter(20, frac, int64(seedRaw)+1)
		if err != nil {
			return false
		}
		gamma := schedule.AutoGamma(prof.NormalizedStdDev)
		params := schedule.Params{
			Spans:                prof.Spans,
			CheckpointBytes:      cfg.ShardBytesPerMachine(),
			Replicas:             2,
			BufferBytes:          8 * 128e6,
			BufferParts:          4,
			BandwidthBytesPerSec: cfg.Instance.NetworkBytesPerSec,
			Alpha:                cfg.Calib.CollectiveAlpha,
			Gamma:                gamma,
		}
		plan, err := schedule.Partition(params)
		if err != nil {
			return false
		}
		// Realize a bad iteration: every span shrunk by one profiled
		// deviation. The scheduled per-span traffic must still fit.
		shrink := 1 - prof.NormalizedStdDev
		for i, span := range prof.Spans {
			var need simclock.Duration
			for _, c := range plan.ChunksInSpan(i) {
				need += params.Alpha + simclock.Duration(c.Bytes/params.BandwidthBytesPerSec)
			}
			realized := simclock.Duration(float64(span.Length) * shrink)
			if need > realized+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
