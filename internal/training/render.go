package training

import (
	"fmt"
	"strings"

	"gemini/internal/schedule"
	"gemini/internal/simclock"
)

// RenderTimeline draws the iteration as an ASCII Gantt chart in the style
// of the paper's Figure 4: a compute row, a network row, and — when a
// checkpoint plan is supplied — a checkpoint row showing where
// Algorithm 2 placed the chunks inside the idle spans.
//
//	compute  ████████████████████████████████████▏update██
//	network  ▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓▓········
//	ckpt     ····························CCCCCCCC
//
// width is the number of character cells for the full iteration.
func RenderTimeline(tl *Timeline, plan *schedule.Plan, width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Iteration <= 0 {
		return "(empty timeline)\n"
	}
	cell := tl.Iteration / simclock.Duration(width)
	compute := make([]rune, width)
	network := make([]rune, width)
	ckptRow := make([]rune, width)
	for i := range compute {
		compute[i], network[i], ckptRow[i] = '·', '·', '·'
	}
	paint := func(row []rune, from, to simclock.Duration, mark rune) {
		lo := int(from / cell)
		hi := int(to / cell)
		if hi >= width {
			hi = width - 1
		}
		for i := lo; i <= hi && i >= 0; i++ {
			row[i] = mark
		}
	}
	for _, op := range tl.Ops {
		switch op.Kind {
		case OpCompute:
			paint(compute, op.Start, op.End, '█')
		case OpUpdate:
			paint(compute, op.Start, op.End, 'U')
		case OpAllGather:
			paint(network, op.Start, op.End, '▓')
		case OpReduceScatter:
			paint(network, op.Start, op.End, '▒')
		}
	}
	var ckptLegend string
	if plan != nil {
		tr := tl.Trace()
		spans := tr.IdleSpans()
		for _, c := range plan.Chunks {
			if c.Span >= len(spans) {
				// Overflow chunks extend past the last span.
				paint(ckptRow, tl.Iteration-cell, tl.Iteration, 'X')
				continue
			}
			s := spans[c.Span]
			paint(ckptRow, s.Offset, s.Offset+s.Length, 'C')
		}
		ckptLegend = "  C checkpoint chunks  X overflow"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "iteration %.1fs, %d cells of %.2fs\n", tl.Iteration.Seconds(), width, cell.Seconds())
	fmt.Fprintf(&b, "compute  %s\n", string(compute))
	fmt.Fprintf(&b, "network  %s\n", string(network))
	if plan != nil {
		fmt.Fprintf(&b, "ckpt     %s\n", string(ckptRow))
	}
	fmt.Fprintf(&b, "legend: █ fwd/bwd  U update  ▓ all-gather  ▒ reduce-scatter  · idle%s\n", ckptLegend)
	return b.String()
}
