package training

import (
	"math"
	"testing"

	"gemini/internal/metrics"
	"gemini/internal/placement"
	"gemini/internal/schedule"
)

// Executor tests reproduce the §7.4 ablation (Figure 16) on GPT-2 40B /
// 16× p3dn and the §7.2 no-overhead result (Figure 7) on GPT-2 100B /
// 16× p4d.

func exec40B(t *testing.T, scheme schedule.Scheme) *ExecResult {
	t.Helper()
	cfg := cfg40Bp3dn(t)
	opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), scheme)
	opts.Iterations = 2
	res, err := Execute(cfg, opts)
	if err != nil {
		t.Fatalf("Execute(%v): %v", scheme, err)
	}
	return res
}

func TestExecutorBaselineMatchesAnalyticTimeline(t *testing.T) {
	res := exec40B(t, schedule.SchemeBaseline)
	if res.CheckpointTime != 0 {
		t.Fatalf("baseline measured checkpoint time %v", res.CheckpointTime)
	}
	diff := math.Abs(float64(res.IterationTime-res.BaselineIteration)) / float64(res.BaselineIteration)
	if diff > 0.02 {
		t.Fatalf("executor baseline %v deviates %.1f%% from analytic %v",
			res.IterationTime, diff*100, res.BaselineIteration)
	}
}

func TestExecutorGeminiNoOverhead40B(t *testing.T) {
	res := exec40B(t, schedule.SchemeGemini)
	if res.OOM {
		t.Fatal("GEMINI scheme reported OOM")
	}
	if ov := res.Overhead(); ov > 0.02 {
		t.Fatalf("GEMINI overhead %.1f%%, want ≈0%% (Fig. 16)", ov*100)
	}
	if res.CheckpointTime <= 0 {
		t.Fatal("no checkpoint time measured")
	}
	if res.NetworkIdle <= 0 {
		t.Fatal("no residual idle time — network should not be saturated")
	}
}

func TestExecutorBlockingOverheadMatchesPaper(t *testing.T) {
	// Fig. 16: Blocking is ≈10% over baseline on GPT-2 40B / p3dn.
	res := exec40B(t, schedule.SchemeBlocking)
	ov := res.Overhead()
	if ov < 0.05 || ov > 0.20 {
		t.Fatalf("blocking overhead %.1f%%, want ≈10%%", ov*100)
	}
}

func TestExecutorNaiveOOMs(t *testing.T) {
	// Fig. 16: naive interleave requires a buffer as large as the biggest
	// idle span's traffic (>2 GB per GPU in the paper) and OOMs.
	res := exec40B(t, schedule.SchemeNaive)
	if !res.OOM {
		t.Fatalf("naive interleave did not OOM; requires %v bytes", res.RequiredBufferBytes)
	}
	if res.IterationTime != 0 {
		t.Fatal("OOM run should not execute iterations")
	}
}

func TestExecutorNoPipelineWorseThanGemini(t *testing.T) {
	// Fig. 16: without pipelining the GPU→CPU copies stall transfers and
	// the iteration slows by a few percent; GEMINI stays at baseline.
	noPipe := exec40B(t, schedule.SchemeNoPipeline)
	gem := exec40B(t, schedule.SchemeGemini)
	if noPipe.OOM || gem.OOM {
		t.Fatal("unexpected OOM")
	}
	if noPipe.IterationTime <= gem.IterationTime {
		t.Fatalf("no-pipeline %v should be slower than GEMINI %v",
			noPipe.IterationTime, gem.IterationTime)
	}
	if ov := noPipe.Overhead(); ov < 0.01 || ov > 0.15 {
		t.Fatalf("no-pipeline overhead %.1f%%, want a few percent", ov*100)
	}
}

func TestExecutorGemini100BNoOverheadAndFastCheckpoint(t *testing.T) {
	// §7.2: per-iteration checkpointing of GPT-2 100B on p4d adds no
	// overhead and the checkpoint completes in < 3 s.
	cfg := cfg100B(t)
	opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), schedule.SchemeGemini)
	opts.Iterations = 2
	res, err := Execute(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Overhead(); ov > 0.02 {
		t.Fatalf("overhead %.2f%%, want ≈0%%", ov*100)
	}
	ck := res.CheckpointTime.Seconds()
	if ck <= 0 || ck > 3.5 {
		t.Fatalf("checkpoint time %.2fs, want < 3s (§7.2)", ck)
	}
	if res.NetworkIdle <= 0 {
		t.Fatal("idle time should remain after checkpoint insertion (Fig. 8)")
	}
}

func TestExecutorValidation(t *testing.T) {
	cfg := cfg40Bp3dn(t)
	if _, err := Execute(cfg, ExecOptions{}); err == nil {
		t.Error("missing placement accepted")
	}
	opts := DefaultExecOptions(placement.MustMixed(8, 2), schedule.SchemeGemini)
	if _, err := Execute(cfg, opts); err == nil {
		t.Error("mismatched placement size accepted")
	}
	opts = DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), schedule.SchemeGemini)
	opts.Iterations = 0
	if _, err := Execute(cfg, opts); err == nil {
		t.Error("zero iterations accepted")
	}
	opts = DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), schedule.SchemeGemini)
	opts.ProfileWindow = 0
	if _, err := Execute(cfg, opts); err == nil {
		t.Error("zero profile window accepted")
	}
	bad := cfg
	bad.Machines = 0
	if _, err := Execute(bad, DefaultExecOptions(placement.MustMixed(16, 2), schedule.SchemeGemini)); err == nil {
		t.Error("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExecute on invalid input did not panic")
		}
	}()
	MustExecute(bad, DefaultExecOptions(placement.MustMixed(16, 2), schedule.SchemeGemini))
}

func TestExecutorThreeReplicas(t *testing.T) {
	// m=3 doubles the remote checkpoint traffic; on 100B/p4d the idle
	// window still absorbs it.
	cfg := cfg100B(t)
	opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 3), schedule.SchemeGemini)
	opts.Iterations = 2
	res, err := Execute(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("m=3 OOMed")
	}
	if ov := res.Overhead(); ov > 0.05 {
		t.Fatalf("m=3 overhead %.1f%%, want small", ov*100)
	}
}

func TestExecutorSingleReplicaLocalOnly(t *testing.T) {
	// m=1: no network checkpoint traffic at all; only local copies.
	cfg := cfg40Bp3dn(t)
	opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 1), schedule.SchemeGemini)
	opts.Iterations = 1
	res, err := Execute(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Overhead(); math.Abs(ov) > 0.02 {
		t.Fatalf("local-only overhead %.1f%%, want ≈0", ov*100)
	}
	if res.CheckpointTime <= 0 {
		t.Fatal("local copies should still be measured as checkpoint time")
	}
}

// The executor publishes per-iteration training.* metrics and its
// realized Algorithm 2 idle utilization: GEMINI hides everything in idle
// spans (1), Blocking hides nothing (0), Baseline has nothing to hide.
func TestExecutorMetricsAndIdleUtilization(t *testing.T) {
	execWithMetrics := func(scheme schedule.Scheme) (*ExecResult, *metrics.Registry) {
		cfg := cfg40Bp3dn(t)
		opts := DefaultExecOptions(placement.MustMixed(cfg.Machines, 2), scheme)
		opts.Iterations = 2
		opts.Metrics = metrics.NewRegistry()
		res, err := Execute(cfg, opts)
		if err != nil {
			t.Fatalf("Execute(%v): %v", scheme, err)
		}
		return res, opts.Metrics
	}

	res, reg := execWithMetrics(schedule.SchemeGemini)
	if res.IdleUtilization != 1 {
		t.Errorf("GEMINI idle utilization %v, want 1 (fits in idle spans)", res.IdleUtilization)
	}
	cs := reg.Snapshot()
	if v, _ := cs.Get("training.iterations"); v != 2 {
		t.Errorf("training.iterations = %v, want 2", v)
	}
	if v, _ := cs.Get("training.iteration_seconds.count"); v != 2 {
		t.Errorf("iteration_seconds.count = %v, want 2", v)
	}
	if v, _ := cs.Get("training.iteration_seconds.mean"); v != res.IterationTime.Seconds() {
		t.Errorf("iteration_seconds.mean = %v, want %v", v, res.IterationTime.Seconds())
	}
	if v, _ := cs.Get("training.ckpt_wall_seconds.count"); v != 2 {
		t.Errorf("ckpt_wall_seconds.count = %v, want 2", v)
	}
	if v, _ := cs.Get("training.idle_utilization"); v != 1 {
		t.Errorf("idle_utilization gauge = %v, want 1", v)
	}

	if res, _ := execWithMetrics(schedule.SchemeBlocking); res.IdleUtilization != 0 {
		t.Errorf("Blocking idle utilization %v, want 0 (gated)", res.IdleUtilization)
	}
	res, reg = execWithMetrics(schedule.SchemeBaseline)
	if res.IdleUtilization != 1 {
		t.Errorf("Baseline idle utilization %v, want 1 (vacuous)", res.IdleUtilization)
	}
	// Baseline takes no checkpoints: the checkpoint histogram stays empty.
	if v, _ := reg.Snapshot().Get("training.ckpt_wall_seconds.count"); v != 0 {
		t.Errorf("baseline ckpt_wall_seconds.count = %v, want 0", v)
	}
}
