// Package kvstore is the distributed key-value store GEMINI's failure
// recovery module coordinates through (§3.2) — an etcd stand-in with the
// semantics the agents need: revisioned keys, compare-and-swap, leases
// with TTL expiry (heartbeats), prefix watches, and lease-based leader
// election for promoting a new root machine.
//
// The store is safe for concurrent use, so the same implementation backs
// both the in-process simulation (driven by a virtual clock) and the TCP
// server in cmd/kvstored (driven by the wall clock).
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gemini/internal/simclock"
)

// ErrUnavailable is returned by store operations while the store is inside
// an injected unavailability window (chaos testing): the etcd cluster has
// lost quorum and serves nothing. Clients are expected to retry.
var ErrUnavailable = errors.New("kvstore: store unavailable")

// LeaseID identifies a granted lease. Zero means "no lease".
type LeaseID int64

// Entry is a stored key-value pair.
type Entry struct {
	Key   string
	Value string
	// Rev is the revision at which the key was last written.
	Rev int64
	// Lease is the lease the key is attached to, if any.
	Lease LeaseID
}

// EventType distinguishes watch events.
type EventType int

const (
	// EventPut fires on creation or update.
	EventPut EventType = iota
	// EventDelete fires on explicit deletion or lease expiry.
	EventDelete
)

func (t EventType) String() string {
	switch t {
	case EventPut:
		return "put"
	case EventDelete:
		return "delete"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is delivered to watchers in revision order.
type Event struct {
	Type  EventType
	Entry Entry
}

// WatchID identifies a registered watch.
type WatchID int64

type watcher struct {
	id     WatchID
	prefix string
	fn     func(Event)
}

type lease struct {
	id      LeaseID
	ttl     simclock.Duration
	expires simclock.Time
	keys    map[string]bool
}

// Store is a revisioned, lease-aware key-value store.
type Store struct {
	mu        sync.Mutex
	now       func() simclock.Time
	rev       int64
	data      map[string]Entry
	leases    map[LeaseID]*lease
	nextLease LeaseID
	watchers  []*watcher
	nextWatch WatchID

	// Watch events are queued under the mutex and delivered after it is
	// released, so callbacks may freely call back into the store.
	pending    []Event
	delivering bool
	deliverMu  sync.Mutex

	// Chaos controls. While down, every operation fails (reads return
	// nothing, writes return ErrUnavailable) and lease TTLs are frozen:
	// an etcd cluster that lost quorum cannot expire leases either.
	down      bool
	downSince simclock.Time
	// jitterMax > 0 adds a deterministic pseudo-random extension of up to
	// jitterMax to every lease expiry computed by Grant and KeepAlive.
	jitterMax   simclock.Duration
	jitterState uint64
}

// New creates a store whose lease clock is supplied by now. A nil now
// disables lease expiry (leases never time out).
func New(now func() simclock.Time) *Store {
	if now == nil {
		now = func() simclock.Time { return 0 }
	}
	return &Store{
		now:    now,
		data:   make(map[string]Entry),
		leases: make(map[LeaseID]*lease),
	}
}

// SetAvailable opens (up=false) or closes (up=true) an unavailability
// window. While down the store serves nothing and lease clocks freeze;
// on restore every outstanding lease expiry is shifted by the outage
// duration, so a lease that had 3s of TTL left when the outage began
// still has 3s left when it ends.
func (s *Store) SetAvailable(up bool) {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if up == !s.down {
		return
	}
	if !up {
		s.down = true
		s.downSince = s.now()
		return
	}
	pause := s.now().Sub(s.downSince)
	s.down = false
	for _, l := range s.leases {
		l.expires = l.expires.Add(pause)
	}
	s.sweepLocked()
}

// Available reports whether the store is currently serving requests.
func (s *Store) Available() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down
}

// SetLeaseJitter makes Grant and KeepAlive extend each computed lease
// expiry by a deterministic pseudo-random duration in [0, max). Zero max
// disables jitter. The seed fixes the pseudo-random sequence so chaos
// runs are reproducible.
func (s *Store) SetLeaseJitter(max simclock.Duration, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jitterMax = max
	s.jitterState = uint64(seed)
}

// jitterLocked draws the next jitter amount (SplitMix64). Callers hold s.mu.
func (s *Store) jitterLocked() simclock.Duration {
	if s.jitterMax <= 0 {
		return 0
	}
	s.jitterState += 0x9E3779B97F4A7C15
	z := s.jitterState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	frac := float64(z%(1<<20)) / float64(1<<20)
	return simclock.Duration(float64(s.jitterMax) * frac)
}

// sweepLocked expires leases due at the current instant, deleting their
// keys and emitting delete events. Callers hold s.mu.
func (s *Store) sweepLocked() {
	if s.down {
		return
	}
	t := s.now()
	var expired []*lease
	for _, l := range s.leases {
		if l.expires <= t {
			expired = append(expired, l)
		}
	}
	// Deterministic order for event delivery.
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	for _, l := range expired {
		delete(s.leases, l.id)
		keys := make([]string, 0, len(l.keys))
		for k := range l.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if e, ok := s.data[k]; ok && e.Lease == l.id {
				delete(s.data, k)
				s.rev++
				s.notifyLocked(Event{Type: EventDelete, Entry: Entry{Key: k, Rev: s.rev, Lease: l.id}})
			}
		}
	}
}

func (s *Store) notifyLocked(ev Event) {
	s.pending = append(s.pending, ev)
}

// flush delivers queued events in revision order. It must be called
// without s.mu held. A single flusher drains everything, including events
// produced by the callbacks themselves, preserving order; deliverMu
// serializes flushers from different goroutines.
func (s *Store) flush() {
	s.deliverMu.Lock()
	if s.delivering {
		s.deliverMu.Unlock()
		return
	}
	s.delivering = true
	s.deliverMu.Unlock()
	for {
		s.mu.Lock()
		if len(s.pending) == 0 {
			s.mu.Unlock()
			break
		}
		ev := s.pending[0]
		s.pending = s.pending[1:]
		ws := append([]*watcher(nil), s.watchers...)
		s.mu.Unlock()
		for _, w := range ws {
			if strings.HasPrefix(ev.Entry.Key, w.prefix) {
				w.fn(ev)
			}
		}
	}
	s.deliverMu.Lock()
	s.delivering = false
	s.deliverMu.Unlock()
	// Close the race where another goroutine queued an event and bounced
	// off the delivering flag just as this flusher drained: re-check.
	s.mu.Lock()
	again := len(s.pending) > 0
	s.mu.Unlock()
	if again {
		s.flush()
	}
}

// mutators and sweeping readers call flush via defer, after the mutex
// defer releases — defers run LIFO, so the lock is dropped first.

// Rev returns the store's current revision.
func (s *Store) Rev() int64 {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return s.rev
}

// Put writes key=value, optionally attached to a lease, and returns the
// new revision. Writing to an expired or unknown lease fails.
func (s *Store) Put(key, value string, leaseID LeaseID) (int64, error) {
	if key == "" {
		return 0, fmt.Errorf("kvstore: empty key")
	}
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, ErrUnavailable
	}
	s.sweepLocked()
	return s.putLocked(key, value, leaseID)
}

func (s *Store) putLocked(key, value string, leaseID LeaseID) (int64, error) {
	var l *lease
	if leaseID != 0 {
		l = s.leases[leaseID]
		if l == nil {
			return 0, fmt.Errorf("kvstore: lease %d not found", leaseID)
		}
	}
	if old, ok := s.data[key]; ok && old.Lease != 0 && old.Lease != leaseID {
		if prev := s.leases[old.Lease]; prev != nil {
			delete(prev.keys, key)
		}
	}
	s.rev++
	e := Entry{Key: key, Value: value, Rev: s.rev, Lease: leaseID}
	s.data[key] = e
	if l != nil {
		l.keys[key] = true
	}
	s.notifyLocked(Event{Type: EventPut, Entry: e})
	return s.rev, nil
}

// Get returns the entry under key.
func (s *Store) Get(key string) (Entry, bool) {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return Entry{}, false
	}
	s.sweepLocked()
	e, ok := s.data[key]
	return e, ok
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return false
	}
	s.sweepLocked()
	e, ok := s.data[key]
	if !ok {
		return false
	}
	if e.Lease != 0 {
		if l := s.leases[e.Lease]; l != nil {
			delete(l.keys, key)
		}
	}
	delete(s.data, key)
	s.rev++
	s.notifyLocked(Event{Type: EventDelete, Entry: Entry{Key: key, Rev: s.rev, Lease: e.Lease}})
	return true
}

// CompareAndSwap writes key=value only if the key's current revision is
// expectRev (0 means the key must not exist). It reports success and the
// new revision.
func (s *Store) CompareAndSwap(key string, expectRev int64, value string, leaseID LeaseID) (int64, bool, error) {
	if key == "" {
		return 0, false, fmt.Errorf("kvstore: empty key")
	}
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, false, ErrUnavailable
	}
	s.sweepLocked()
	cur, exists := s.data[key]
	if expectRev == 0 {
		if exists {
			return 0, false, nil
		}
	} else if !exists || cur.Rev != expectRev {
		return 0, false, nil
	}
	rev, err := s.putLocked(key, value, leaseID)
	if err != nil {
		return 0, false, err
	}
	return rev, true, nil
}

// Range returns all entries whose key has the given prefix, sorted by key.
func (s *Store) Range(prefix string) []Entry {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil
	}
	s.sweepLocked()
	var out []Entry
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Grant creates a lease with the given TTL.
func (s *Store) Grant(ttl simclock.Duration) (LeaseID, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("kvstore: lease TTL must be positive, got %v", ttl)
	}
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return 0, ErrUnavailable
	}
	s.sweepLocked()
	s.nextLease++
	id := s.nextLease
	s.leases[id] = &lease{id: id, ttl: ttl, expires: s.now().Add(ttl + s.jitterLocked()), keys: make(map[string]bool)}
	return id, nil
}

// KeepAlive renews a lease's TTL — the heartbeat primitive. Renewing an
// expired or unknown lease fails, exactly like etcd: the client must
// re-grant and re-put its keys.
func (s *Store) KeepAlive(id LeaseID) error {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrUnavailable
	}
	s.sweepLocked()
	l := s.leases[id]
	if l == nil {
		return fmt.Errorf("kvstore: lease %d not found (expired?)", id)
	}
	l.expires = s.now().Add(l.ttl + s.jitterLocked())
	return nil
}

// Revoke drops a lease immediately, deleting its keys.
func (s *Store) Revoke(id LeaseID) {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return
	}
	l := s.leases[id]
	if l == nil {
		return
	}
	l.expires = s.now() // expire now
	s.sweepLocked()
}

// LeaseRemaining returns the time until a lease expires, and whether the
// lease exists.
func (s *Store) LeaseRemaining(id LeaseID) (simclock.Duration, bool) {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	l := s.leases[id]
	if l == nil {
		return 0, false
	}
	return l.expires.Sub(s.now()), true
}

// NextExpiry returns the earliest lease expiry time, or simclock.Forever
// when no leases exist. Simulation drivers schedule a sweep then.
func (s *Store) NextExpiry() simclock.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return simclock.Forever
	}
	earliest := simclock.Forever
	for _, l := range s.leases {
		if l.expires < earliest {
			earliest = l.expires
		}
	}
	return earliest
}

// Sweep expires due leases eagerly (delivering watch events); drivers
// call it from a scheduled event at NextExpiry.
func (s *Store) Sweep() {
	defer s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
}

// Watch registers fn for events on keys with the given prefix. The
// callback runs synchronously with the mutating operation; it must not
// call back into the store from the same goroutine path that mutates.
func (s *Store) Watch(prefix string, fn func(Event)) WatchID {
	if fn == nil {
		panic("kvstore: nil watch callback")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextWatch++
	s.watchers = append(s.watchers, &watcher{id: s.nextWatch, prefix: prefix, fn: fn})
	return s.nextWatch
}

// Unwatch cancels a watch.
func (s *Store) Unwatch(id WatchID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, w := range s.watchers {
		if w.id == id {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			return
		}
	}
}
