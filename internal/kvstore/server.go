package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a Store over TCP with a line-oriented protocol, standing
// in for an etcd endpoint. One request per line, fields separated by
// spaces, values percent-encoded. Responses are single lines beginning
// with "OK", "ERR", or "NONE".
//
//	PUT <key> <value> [lease]     → OK <rev>
//	GET <key>                     → OK <rev> <lease> <value> | NONE
//	DEL <key>                     → OK <1|0>
//	CAS <key> <rev> <value> [l]   → OK <rev> <1|0>
//	RANGE <prefix>                → OK <n> then n lines: <key> <rev> <lease> <value>
//	GRANT <ttl-seconds>           → OK <lease>
//	KEEPALIVE <lease>             → OK
//	REVOKE <lease>                → OK
//	REV                           → OK <rev>
//	WATCH <prefix>                → OK, then the connection streams
//	                                EVENT <put|delete> <key> <rev> <lease> <value>
//	                                lines until the client closes it.
type Server struct {
	store *Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving the store on the given address (e.g.
// "127.0.0.1:0") and returns the bound server.
func NewServer(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	for r.Scan() {
		line := r.Text()
		if fields := strings.Fields(line); len(fields) >= 1 && strings.ToUpper(fields[0]) == "WATCH" {
			s.serveWatch(conn, w, fields[1:])
			return // the connection is consumed by the stream
		}
		resp := s.dispatch(line)
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// serveWatch turns the connection into an event stream: every store
// event under the prefix is pushed as one EVENT line. The stream ends
// when the client closes the connection (the write fails) or the server
// shuts down.
func (s *Server) serveWatch(conn net.Conn, w *bufio.Writer, args []string) {
	if len(args) > 1 {
		w.WriteString("ERR WATCH wants [prefix]\n")
		w.Flush()
		return
	}
	prefix := ""
	if len(args) == 1 {
		prefix = args[0]
	}
	// Events are forwarded through a buffered channel so the store's
	// delivery path never blocks on a slow client; overflow closes the
	// watch (the client must re-sync with RANGE, as with etcd compaction).
	events := make(chan Event, 256)
	var overflow atomic.Bool
	id := s.store.Watch(prefix, func(ev Event) {
		select {
		case events <- ev:
		default:
			overflow.Store(true)
		}
	})
	defer s.store.Unwatch(id)
	if _, err := w.WriteString("OK\n"); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	dead := s.watchPoll(conn)
	for {
		select {
		case ev := <-events:
			if overflow.Load() {
				w.WriteString("ERR watch overflow\n")
				w.Flush()
				return
			}
			line := fmt.Sprintf("EVENT %s %s %d %d %s\n",
				ev.Type, ev.Entry.Key, ev.Entry.Rev, ev.Entry.Lease, url.QueryEscape(ev.Entry.Value))
			if _, err := w.WriteString(line); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case <-dead:
			return
		}
	}
}

// watchPoll returns a channel that fires when the connection dies or the
// server closes, checked by a light read with deadline.
func (s *Server) watchPoll(conn net.Conn) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		buf := make([]byte, 1)
		for {
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			_, err := conn.Read(buf)
			if err == nil {
				continue // clients must not write during a watch; ignore
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.mu.Lock()
				closed := s.closed
				s.mu.Unlock()
				if closed {
					return
				}
				continue
			}
			return
		}
	}()
	return ch
}

func (s *Server) dispatch(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	fail := func(err error) string { return "ERR " + strings.ReplaceAll(err.Error(), "\n", " ") }
	switch cmd {
	case "PUT":
		if len(args) < 2 || len(args) > 3 {
			return "ERR PUT wants key value [lease]"
		}
		value, err := url.QueryUnescape(args[1])
		if err != nil {
			return fail(err)
		}
		leaseID, err := parseLease(args, 2)
		if err != nil {
			return fail(err)
		}
		rev, err := s.store.Put(args[0], value, leaseID)
		if err != nil {
			return fail(err)
		}
		return fmt.Sprintf("OK %d", rev)
	case "GET":
		if len(args) != 1 {
			return "ERR GET wants key"
		}
		e, ok := s.store.Get(args[0])
		if !ok {
			return "NONE"
		}
		return fmt.Sprintf("OK %d %d %s", e.Rev, e.Lease, url.QueryEscape(e.Value))
	case "DEL":
		if len(args) != 1 {
			return "ERR DEL wants key"
		}
		if s.store.Delete(args[0]) {
			return "OK 1"
		}
		return "OK 0"
	case "CAS":
		if len(args) < 3 || len(args) > 4 {
			return "ERR CAS wants key rev value [lease]"
		}
		expect, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fail(err)
		}
		value, err := url.QueryUnescape(args[2])
		if err != nil {
			return fail(err)
		}
		leaseID, err := parseLease(args, 3)
		if err != nil {
			return fail(err)
		}
		rev, won, err := s.store.CompareAndSwap(args[0], expect, value, leaseID)
		if err != nil {
			return fail(err)
		}
		if won {
			return fmt.Sprintf("OK %d 1", rev)
		}
		return "OK 0 0"
	case "RANGE":
		prefix := ""
		if len(args) == 1 {
			prefix = args[0]
		} else if len(args) > 1 {
			return "ERR RANGE wants [prefix]"
		}
		entries := s.store.Range(prefix)
		var b strings.Builder
		fmt.Fprintf(&b, "OK %d", len(entries))
		for _, e := range entries {
			fmt.Fprintf(&b, "\n%s %d %d %s", e.Key, e.Rev, e.Lease, url.QueryEscape(e.Value))
		}
		return b.String()
	case "GRANT":
		if len(args) != 1 {
			return "ERR GRANT wants ttl-seconds"
		}
		ttl, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return fail(err)
		}
		id, err := s.store.Grant(durationSeconds(ttl))
		if err != nil {
			return fail(err)
		}
		return fmt.Sprintf("OK %d", id)
	case "KEEPALIVE":
		if len(args) != 1 {
			return "ERR KEEPALIVE wants lease"
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fail(err)
		}
		if err := s.store.KeepAlive(LeaseID(id)); err != nil {
			return fail(err)
		}
		return "OK"
	case "REVOKE":
		if len(args) != 1 {
			return "ERR REVOKE wants lease"
		}
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fail(err)
		}
		s.store.Revoke(LeaseID(id))
		return "OK"
	case "REV":
		return fmt.Sprintf("OK %d", s.store.Rev())
	default:
		return "ERR unknown command " + cmd
	}
}

func parseLease(args []string, idx int) (LeaseID, error) {
	if len(args) <= idx {
		return 0, nil
	}
	id, err := strconv.ParseInt(args[idx], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad lease id %q", args[idx])
	}
	return LeaseID(id), nil
}

// ErrServer is returned by the client when the server reports an error.
var ErrServer = errors.New("kvstore: server error")
