package kvstore

import (
	"errors"
	"testing"

	"gemini/internal/simclock"
)

// fakeClock is a settable virtual clock.
type fakeClock struct{ t simclock.Time }

func (c *fakeClock) now() simclock.Time { return c.t }

func TestPutGetDelete(t *testing.T) {
	s := New(nil)
	rev, err := s.Put("a", "1", 0)
	if err != nil || rev != 1 {
		t.Fatalf("Put: rev=%d err=%v", rev, err)
	}
	e, ok := s.Get("a")
	if !ok || e.Value != "1" || e.Rev != 1 {
		t.Fatalf("Get: %+v %v", e, ok)
	}
	rev2, _ := s.Put("a", "2", 0)
	if rev2 != 2 {
		t.Fatalf("second Put rev %d, want 2", rev2)
	}
	if !s.Delete("a") {
		t.Fatal("Delete reported missing key")
	}
	if s.Delete("a") {
		t.Fatal("double Delete reported success")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if _, err := s.Put("", "x", 0); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := New(nil)
	// Create-if-absent.
	_, won, err := s.CompareAndSwap("k", 0, "v1", 0)
	if err != nil || !won {
		t.Fatalf("CAS create: won=%v err=%v", won, err)
	}
	// Second create fails.
	_, won, _ = s.CompareAndSwap("k", 0, "v2", 0)
	if won {
		t.Fatal("CAS create over existing key won")
	}
	e, _ := s.Get("k")
	// Guarded update with right rev wins.
	_, won, _ = s.CompareAndSwap("k", e.Rev, "v3", 0)
	if !won {
		t.Fatal("CAS with correct rev lost")
	}
	// Stale rev loses.
	_, won, _ = s.CompareAndSwap("k", e.Rev, "v4", 0)
	if won {
		t.Fatal("CAS with stale rev won")
	}
	if got, _ := s.Get("k"); got.Value != "v3" {
		t.Fatalf("value %q, want v3", got.Value)
	}
}

func TestRangeSortedByKey(t *testing.T) {
	s := New(nil)
	for _, k := range []string{"m/2", "m/10", "m/1", "other"} {
		if _, err := s.Put(k, "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Range("m/")
	if len(got) != 3 || got[0].Key != "m/1" || got[1].Key != "m/10" || got[2].Key != "m/2" {
		t.Fatalf("Range = %+v", got)
	}
	if all := s.Range(""); len(all) != 4 {
		t.Fatalf("full range has %d entries", len(all))
	}
}

func TestLeaseExpiryDeletesKeys(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	id, err := s.Grant(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("hb/1", "alive", id); err != nil {
		t.Fatal(err)
	}
	clk.t = 9
	if _, ok := s.Get("hb/1"); !ok {
		t.Fatal("key vanished before lease expiry")
	}
	clk.t = 10
	if _, ok := s.Get("hb/1"); ok {
		t.Fatal("key survived lease expiry")
	}
	if _, ok := s.LeaseRemaining(id); ok {
		t.Fatal("expired lease still exists")
	}
	// Writing under the expired lease fails.
	if _, err := s.Put("hb/1", "again", id); err == nil {
		t.Fatal("Put under expired lease accepted")
	}
}

func TestKeepAliveExtendsLease(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	id, _ := s.Grant(10)
	if _, err := s.Put("k", "v", id); err != nil {
		t.Fatal(err)
	}
	clk.t = 8
	if err := s.KeepAlive(id); err != nil {
		t.Fatalf("KeepAlive: %v", err)
	}
	clk.t = 17 // original expiry would be 10; renewed is 18
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key expired despite keepalive")
	}
	clk.t = 18
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived renewed expiry")
	}
	if err := s.KeepAlive(id); err == nil {
		t.Fatal("KeepAlive on expired lease accepted")
	}
}

func TestRevokeDropsKeysImmediately(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	id, _ := s.Grant(1000)
	if _, err := s.Put("a", "1", id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "2", id); err != nil {
		t.Fatal(err)
	}
	s.Revoke(id)
	if len(s.Range("")) != 0 {
		t.Fatal("revoked lease left keys behind")
	}
	s.Revoke(id) // idempotent
}

func TestGrantValidation(t *testing.T) {
	s := New(nil)
	if _, err := s.Grant(0); err == nil {
		t.Fatal("zero TTL accepted")
	}
	if _, err := s.Grant(-1); err == nil {
		t.Fatal("negative TTL accepted")
	}
	if _, err := s.Put("k", "v", 999); err == nil {
		t.Fatal("unknown lease accepted")
	}
}

func TestReattachKeyToDifferentLease(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	l1, _ := s.Grant(10)
	l2, _ := s.Grant(100)
	if _, err := s.Put("k", "v1", l1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", "v2", l2); err != nil {
		t.Fatal(err)
	}
	clk.t = 50 // l1 long expired
	if e, ok := s.Get("k"); !ok || e.Value != "v2" {
		t.Fatalf("key after lease move: %+v %v", e, ok)
	}
	clk.t = 100
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived second lease expiry")
	}
}

func TestWatchDeliversPutsAndDeletes(t *testing.T) {
	s := New(nil)
	var events []Event
	id := s.Watch("hb/", func(ev Event) { events = append(events, ev) })
	if _, err := s.Put("hb/1", "a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("other", "x", 0); err != nil {
		t.Fatal(err)
	}
	s.Delete("hb/1")
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	if events[0].Type != EventPut || events[0].Entry.Key != "hb/1" || events[0].Entry.Value != "a" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Type != EventDelete || events[1].Entry.Key != "hb/1" {
		t.Fatalf("event 1 = %+v", events[1])
	}
	s.Unwatch(id)
	if _, err := s.Put("hb/2", "b", 0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatal("unwatched callback still fired")
	}
}

func TestWatchFiresOnLeaseExpiry(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	var deleted []string
	s.Watch("", func(ev Event) {
		if ev.Type == EventDelete {
			deleted = append(deleted, ev.Entry.Key)
		}
	})
	id, _ := s.Grant(5)
	if _, err := s.Put("a", "1", id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "2", id); err != nil {
		t.Fatal(err)
	}
	clk.t = 5
	s.Sweep()
	if len(deleted) != 2 || deleted[0] != "a" || deleted[1] != "b" {
		t.Fatalf("expiry deletions %v, want [a b]", deleted)
	}
}

func TestWatchCallbackMayReenterStore(t *testing.T) {
	s := New(nil)
	reacted := false
	s.Watch("trigger", func(ev Event) {
		if ev.Type == EventPut && !reacted {
			reacted = true
			if _, err := s.Put("reaction", "done", 0); err != nil {
				t.Errorf("reentrant Put: %v", err)
			}
		}
	})
	if _, err := s.Put("trigger", "go", 0); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get("reaction"); !ok || e.Value != "done" {
		t.Fatalf("reentrant write missing: %+v %v", e, ok)
	}
}

func TestNextExpiry(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	if s.NextExpiry() != simclock.Forever {
		t.Fatal("empty store has an expiry")
	}
	s.Grant(10)
	s.Grant(5)
	if got := s.NextExpiry(); got != 5 {
		t.Fatalf("NextExpiry = %v, want 5", got)
	}
}

func TestNilWatchPanics(t *testing.T) {
	s := New(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nil watch callback accepted")
		}
	}()
	s.Watch("x", nil)
}

func TestElectionBasics(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	el, err := NewElection(s, "leader")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := el.Leader(); ok {
		t.Fatal("leader exists before any campaign")
	}
	l1, _ := s.Grant(10)
	won, err := el.Campaign("node-1", l1)
	if err != nil || !won {
		t.Fatalf("first campaign: won=%v err=%v", won, err)
	}
	l2, _ := s.Grant(10)
	won, _ = el.Campaign("node-2", l2)
	if won {
		t.Fatal("second candidate won over live leader")
	}
	leader, ok := el.Leader()
	if !ok || leader != "node-1" {
		t.Fatalf("leader %q/%v, want node-1", leader, ok)
	}
	// Re-campaigning as the leader is idempotent.
	won, _ = el.Campaign("node-1", l1)
	if !won {
		t.Fatal("leader re-campaign lost")
	}
}

func TestElectionFailoverOnLeaseExpiry(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	el, _ := NewElection(s, "leader")
	l1, _ := s.Grant(10)
	if won, _ := el.Campaign("node-1", l1); !won {
		t.Fatal("initial campaign lost")
	}
	// node-1 stops heartbeating; its lease expires.
	clk.t = 10
	if _, ok := el.Leader(); ok {
		t.Fatal("dead leader still holds the key")
	}
	l2, _ := s.Grant(10)
	won, _ := el.Campaign("node-2", l2)
	if !won {
		t.Fatal("failover campaign lost")
	}
	if leader, _ := el.Leader(); leader != "node-2" {
		t.Fatalf("leader %q, want node-2", leader)
	}
}

func TestElectionResign(t *testing.T) {
	s := New(nil)
	el, _ := NewElection(s, "leader")
	l1, _ := s.Grant(10)
	if won, _ := el.Campaign("node-1", l1); !won {
		t.Fatal("campaign lost")
	}
	if el.Resign("node-2") {
		t.Fatal("non-leader resigned successfully")
	}
	if !el.Resign("node-1") {
		t.Fatal("leader failed to resign")
	}
	if _, ok := el.Leader(); ok {
		t.Fatal("leader present after resignation")
	}
}

func TestElectionValidation(t *testing.T) {
	s := New(nil)
	if _, err := NewElection(s, ""); err == nil {
		t.Fatal("empty election key accepted")
	}
	el, _ := NewElection(s, "leader")
	if _, err := el.Campaign("", 1); err == nil {
		t.Fatal("empty candidate accepted")
	}
	if _, err := el.Campaign("x", 0); err == nil {
		t.Fatal("campaign without lease accepted")
	}
	if errors.Is(ErrServer, nil) {
		t.Fatal("ErrServer is nil")
	}
}

func TestUniqueLeaderInvariant(t *testing.T) {
	// Many candidates campaigning concurrently through the sequential
	// API: exactly one wins.
	s := New(nil)
	el, _ := NewElection(s, "leader")
	winners := 0
	for i := 0; i < 20; i++ {
		lease, _ := s.Grant(100)
		won, err := el.Campaign("node", lease) // same name → idempotent wins
		if err != nil {
			t.Fatal(err)
		}
		if won {
			winners++
		}
	}
	if winners != 20 {
		t.Fatalf("same-name campaigns won %d/20", winners)
	}
	distinct := 0
	for i := 0; i < 20; i++ {
		lease, _ := s.Grant(100)
		won, _ := el.Campaign(string(rune('a'+i)), lease)
		if won {
			distinct++
		}
	}
	if distinct != 0 {
		t.Fatalf("%d distinct candidates beat a live leader", distinct)
	}
}
