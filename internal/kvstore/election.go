package kvstore

import "fmt"

// Election is lease-based leader election over a single key, the
// mechanism GEMINI uses to promote a worker machine to root when the root
// machine fails (§3.2). The leader holds the election key under its
// lease; when its heartbeats stop, the lease expires, the key vanishes,
// and the next campaigner wins.
type Election struct {
	store *Store
	key   string
}

// NewElection creates an election over the given key.
func NewElection(store *Store, key string) (*Election, error) {
	if key == "" {
		return nil, fmt.Errorf("kvstore: empty election key")
	}
	return &Election{store: store, key: key}, nil
}

// Campaign attempts to become leader using the candidate's lease. It
// succeeds if no live leader holds the key, or if the candidate already
// is the leader (re-campaigning is idempotent).
func (e *Election) Campaign(candidate string, leaseID LeaseID) (bool, error) {
	if candidate == "" {
		return false, fmt.Errorf("kvstore: empty candidate name")
	}
	if leaseID == 0 {
		return false, fmt.Errorf("kvstore: election requires a lease")
	}
	cur, ok := e.store.Get(e.key)
	if !ok {
		_, won, err := e.store.CompareAndSwap(e.key, 0, candidate, leaseID)
		return won, err
	}
	if cur.Value == candidate {
		// Refresh ownership under the (possibly new) lease.
		_, won, err := e.store.CompareAndSwap(e.key, cur.Rev, candidate, leaseID)
		return won, err
	}
	return false, nil
}

// Leader returns the current leader, if any.
func (e *Election) Leader() (string, bool) {
	cur, ok := e.store.Get(e.key)
	if !ok {
		return "", false
	}
	return cur.Value, true
}

// Resign releases leadership if the candidate currently holds it.
func (e *Election) Resign(candidate string) bool {
	cur, ok := e.store.Get(e.key)
	if !ok || cur.Value != candidate {
		return false
	}
	return e.store.Delete(e.key)
}
