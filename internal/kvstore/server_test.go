package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gemini/internal/simclock"
)

// wallClock adapts the wall clock for server tests.
func wallClock() func() simclock.Time {
	start := time.Now()
	return func() simclock.Time { return simclock.Time(time.Since(start).Seconds()) }
}

func newServerClient(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(New(wallClock()), "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestServerPutGetRoundTrip(t *testing.T) {
	_, cli := newServerClient(t)
	rev, err := cli.Put("greeting", "hello world / with spaces & symbols", 0)
	if err != nil || rev != 1 {
		t.Fatalf("Put: rev=%d err=%v", rev, err)
	}
	e, ok, err := cli.Get("greeting")
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if e.Value != "hello world / with spaces & symbols" {
		t.Fatalf("value %q survived transit wrong", e.Value)
	}
	if _, ok, _ := cli.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestServerDeleteAndCAS(t *testing.T) {
	_, cli := newServerClient(t)
	if _, err := cli.Put("k", "v1", 0); err != nil {
		t.Fatal(err)
	}
	_, won, err := cli.CompareAndSwap("k", 0, "nope", 0)
	if err != nil || won {
		t.Fatalf("CAS create over existing: won=%v err=%v", won, err)
	}
	e, _, _ := cli.Get("k")
	_, won, err = cli.CompareAndSwap("k", e.Rev, "v2", 0)
	if err != nil || !won {
		t.Fatalf("guarded CAS: won=%v err=%v", won, err)
	}
	existed, err := cli.Delete("k")
	if err != nil || !existed {
		t.Fatalf("Delete: %v %v", existed, err)
	}
	existed, _ = cli.Delete("k")
	if existed {
		t.Fatal("double delete succeeded")
	}
}

func TestServerRange(t *testing.T) {
	_, cli := newServerClient(t)
	for i := 0; i < 5; i++ {
		if _, err := cli.Put(fmt.Sprintf("m/%d", i), fmt.Sprintf("val %d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Put("other", "x", 0); err != nil {
		t.Fatal(err)
	}
	entries, err := cli.Range("m/")
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(entries) != 5 {
		t.Fatalf("Range returned %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("val %d", i)
		if e.Value != want {
			t.Fatalf("entry %d value %q, want %q", i, e.Value, want)
		}
	}
	all, err := cli.Range("")
	if err != nil || len(all) != 6 {
		t.Fatalf("full Range: %d entries, err %v", len(all), err)
	}
}

func TestServerLeaseLifecycle(t *testing.T) {
	_, cli := newServerClient(t)
	id, err := cli.Grant(30)
	if err != nil || id == 0 {
		t.Fatalf("Grant: %d %v", id, err)
	}
	if _, err := cli.Put("hb", "alive", id); err != nil {
		t.Fatal(err)
	}
	if err := cli.KeepAlive(id); err != nil {
		t.Fatalf("KeepAlive: %v", err)
	}
	if err := cli.Revoke(id); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if _, ok, _ := cli.Get("hb"); ok {
		t.Fatal("key survived revoke")
	}
	if err := cli.KeepAlive(id); !errors.Is(err, ErrServer) {
		t.Fatalf("KeepAlive on revoked lease: %v, want server error", err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	_, cli := newServerClient(t)
	if _, err := cli.roundTrip("BOGUS command", nil); !errors.Is(err, ErrServer) {
		t.Fatalf("garbage command error %v", err)
	}
	if _, err := cli.roundTrip("PUT", nil); !errors.Is(err, ErrServer) {
		t.Fatalf("arity error %v", err)
	}
	// Connection still usable.
	if _, err := cli.Put("k", "v", 0); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := newServerClient(t)
	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("c%d/k%d", c, i)
				if _, err := cli.Put(key, "v", 0); err != nil {
					errs <- err
					return
				}
				if _, ok, err := cli.Get(key); err != nil || !ok {
					errs <- fmt.Errorf("get %s: %v %v", key, ok, err)
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rev, err := cli.Rev()
	if err != nil {
		t.Fatal(err)
	}
	if rev != clients*perClient {
		t.Fatalf("final revision %d, want %d", rev, clients*perClient)
	}
}

func TestWatchStreamOverTCP(t *testing.T) {
	srv, cli := newServerClient(t)
	events, cancel, err := WatchPrefix(srv.Addr(), "hb/")
	if err != nil {
		t.Fatalf("WatchPrefix: %v", err)
	}
	defer cancel()

	if _, err := cli.Put("hb/1", "alive & well", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Put("other", "ignored", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Delete("hb/1"); err != nil {
		t.Fatal(err)
	}

	recv := func() Event {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("watch stream closed early")
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for event")
		}
		panic("unreachable")
	}
	ev := recv()
	if ev.Type != EventPut || ev.Entry.Key != "hb/1" || ev.Entry.Value != "alive & well" {
		t.Fatalf("first event %+v", ev)
	}
	ev = recv()
	if ev.Type != EventDelete || ev.Entry.Key != "hb/1" {
		t.Fatalf("second event %+v", ev)
	}
	// No event for the non-matching key: the channel stays quiet.
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWatchStreamEndsOnCancel(t *testing.T) {
	srv, cli := newServerClient(t)
	events, cancel, err := WatchPrefix(srv.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := cancel(); err != nil {
		t.Fatal(err)
	}
	// Stream must close; further store activity must not panic anything.
	select {
	case _, ok := <-events:
		if ok {
			// A last in-flight event is acceptable; the close must follow.
			if _, ok := <-events; ok {
				t.Fatal("stream still open after cancel")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after cancel")
	}
	if _, err := cli.Put("x", "y", 0); err != nil {
		t.Fatal(err)
	}
}

func TestWatchLeaseExpiryStreamsDelete(t *testing.T) {
	srv, cli := newServerClient(t)
	events, cancel, err := WatchPrefix(srv.Addr(), "lease/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	lease, err := cli.Grant(0.05) // 50 ms TTL on the wall clock
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Put("lease/k", "v", lease); err != nil {
		t.Fatal(err)
	}
	// First event: the put.
	select {
	case ev := <-events:
		if ev.Type != EventPut {
			t.Fatalf("first event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no put event")
	}
	// Poke the store after the TTL so the sweep runs, then expect the
	// expiry delete on the stream.
	time.Sleep(80 * time.Millisecond)
	if _, err := cli.Rev(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Type != EventDelete || ev.Entry.Key != "lease/k" {
			t.Fatalf("expiry event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no expiry event")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(New(nil), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dial succeeded after close")
	}
}

// TestLeaderElectionOverTCP runs the root-election protocol entirely
// through the wire client: two candidates race via CAS, the loser waits,
// the winner's lease is revoked (its machine "dies"), the loser wins.
func TestLeaderElectionOverTCP(t *testing.T) {
	srv, _ := newServerClient(t)
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	l1, err := c1.Grant(60)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c2.Grant(60)
	if err != nil {
		t.Fatal(err)
	}
	_, won1, err := c1.CompareAndSwap("root", 0, "node-1", l1)
	if err != nil || !won1 {
		t.Fatalf("first campaign: %v %v", won1, err)
	}
	_, won2, err := c2.CompareAndSwap("root", 0, "node-2", l2)
	if err != nil || won2 {
		t.Fatalf("second campaign should lose: %v %v", won2, err)
	}
	// Leader dies: revoking its lease deletes the election key.
	if err := c1.Revoke(l1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c2.Get("root"); ok {
		t.Fatal("election key survived the leader's lease revocation")
	}
	_, won2, err = c2.CompareAndSwap("root", 0, "node-2", l2)
	if err != nil || !won2 {
		t.Fatalf("failover campaign: %v %v", won2, err)
	}
	e, ok, err := c2.Get("root")
	if err != nil || !ok || e.Value != "node-2" {
		t.Fatalf("leader after failover: %+v %v %v", e, ok, err)
	}
}

func TestServerCASWithLeaseOverTCP(t *testing.T) {
	_, cli := newServerClient(t)
	lease, err := cli.Grant(60)
	if err != nil {
		t.Fatal(err)
	}
	_, won, err := cli.CompareAndSwap("leader", 0, "node-1", lease)
	if err != nil || !won {
		t.Fatalf("election CAS: won=%v err=%v", won, err)
	}
	e, ok, _ := cli.Get("leader")
	if !ok || e.Lease != lease || e.Value != "node-1" {
		t.Fatalf("leader entry %+v", e)
	}
}
