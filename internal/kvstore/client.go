package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"gemini/internal/simclock"
)

func durationSeconds(s float64) simclock.Duration { return simclock.Duration(s) }

// Client talks to a Server over TCP. It is safe for concurrent use;
// requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a kvstore server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request line and reads extra+1 response lines.
func (c *Client) roundTrip(req string, extraOf func(first string) int) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.WriteString(req + "\n"); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("kvstore: connection closed")
	}
	first := c.r.Text()
	if strings.HasPrefix(first, "ERR ") {
		return nil, fmt.Errorf("%w: %s", ErrServer, strings.TrimPrefix(first, "ERR "))
	}
	lines := []string{first}
	if extraOf != nil {
		for n := extraOf(first); n > 0; n-- {
			if !c.r.Scan() {
				return nil, fmt.Errorf("kvstore: truncated response")
			}
			lines = append(lines, c.r.Text())
		}
	}
	return lines, nil
}

// Put writes key=value under an optional lease and returns the revision.
func (c *Client) Put(key, value string, lease LeaseID) (int64, error) {
	req := fmt.Sprintf("PUT %s %s", key, url.QueryEscape(value))
	if lease != 0 {
		req += fmt.Sprintf(" %d", lease)
	}
	lines, err := c.roundTrip(req, nil)
	if err != nil {
		return 0, err
	}
	return parseInt(strings.TrimPrefix(lines[0], "OK "))
}

// Get fetches an entry.
func (c *Client) Get(key string) (Entry, bool, error) {
	lines, err := c.roundTrip("GET "+key, nil)
	if err != nil {
		return Entry{}, false, err
	}
	if lines[0] == "NONE" {
		return Entry{}, false, nil
	}
	fields := strings.SplitN(strings.TrimPrefix(lines[0], "OK "), " ", 3)
	if len(fields) != 3 {
		return Entry{}, false, fmt.Errorf("kvstore: malformed GET response %q", lines[0])
	}
	rev, err := parseInt(fields[0])
	if err != nil {
		return Entry{}, false, err
	}
	leaseID, err := parseInt(fields[1])
	if err != nil {
		return Entry{}, false, err
	}
	value, err := url.QueryUnescape(fields[2])
	if err != nil {
		return Entry{}, false, err
	}
	return Entry{Key: key, Value: value, Rev: rev, Lease: LeaseID(leaseID)}, true, nil
}

// Delete removes a key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	lines, err := c.roundTrip("DEL "+key, nil)
	if err != nil {
		return false, err
	}
	return strings.TrimPrefix(lines[0], "OK ") == "1", nil
}

// CompareAndSwap performs a revision-guarded write.
func (c *Client) CompareAndSwap(key string, expectRev int64, value string, lease LeaseID) (int64, bool, error) {
	req := fmt.Sprintf("CAS %s %d %s", key, expectRev, url.QueryEscape(value))
	if lease != 0 {
		req += fmt.Sprintf(" %d", lease)
	}
	lines, err := c.roundTrip(req, nil)
	if err != nil {
		return 0, false, err
	}
	fields := strings.Fields(strings.TrimPrefix(lines[0], "OK "))
	if len(fields) != 2 {
		return 0, false, fmt.Errorf("kvstore: malformed CAS response %q", lines[0])
	}
	rev, err := parseInt(fields[0])
	if err != nil {
		return 0, false, err
	}
	return rev, fields[1] == "1", nil
}

// Range lists entries under a prefix.
func (c *Client) Range(prefix string) ([]Entry, error) {
	lines, err := c.roundTrip(strings.TrimSpace("RANGE "+prefix), func(first string) int {
		n, err := parseInt(strings.TrimPrefix(first, "OK "))
		if err != nil {
			return 0
		}
		return int(n)
	})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, line := range lines[1:] {
		fields := strings.SplitN(line, " ", 4)
		if len(fields) != 4 {
			return nil, fmt.Errorf("kvstore: malformed RANGE row %q", line)
		}
		rev, err := parseInt(fields[1])
		if err != nil {
			return nil, err
		}
		leaseID, err := parseInt(fields[2])
		if err != nil {
			return nil, err
		}
		value, err := url.QueryUnescape(fields[3])
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Key: fields[0], Value: value, Rev: rev, Lease: LeaseID(leaseID)})
	}
	return out, nil
}

// Grant creates a lease with the TTL in seconds.
func (c *Client) Grant(ttlSeconds float64) (LeaseID, error) {
	lines, err := c.roundTrip(fmt.Sprintf("GRANT %g", ttlSeconds), nil)
	if err != nil {
		return 0, err
	}
	id, err := parseInt(strings.TrimPrefix(lines[0], "OK "))
	return LeaseID(id), err
}

// KeepAlive renews a lease.
func (c *Client) KeepAlive(id LeaseID) error {
	_, err := c.roundTrip(fmt.Sprintf("KEEPALIVE %d", id), nil)
	return err
}

// Revoke drops a lease.
func (c *Client) Revoke(id LeaseID) error {
	_, err := c.roundTrip(fmt.Sprintf("REVOKE %d", id), nil)
	return err
}

// Rev returns the store revision.
func (c *Client) Rev() (int64, error) {
	lines, err := c.roundTrip("REV", nil)
	if err != nil {
		return 0, err
	}
	return parseInt(strings.TrimPrefix(lines[0], "OK "))
}

// WatchPrefix opens a dedicated streaming watch connection to a server.
// Events arrive on the returned channel, which closes when the stream
// ends; cancel closes the connection.
func WatchPrefix(addr, prefix string) (<-chan Event, func() error, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	req := strings.TrimSpace("WATCH " + prefix)
	if _, err := fmt.Fprintf(conn, "%s\n", req); err != nil {
		conn.Close()
		return nil, nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		conn.Close()
		return nil, nil, fmt.Errorf("kvstore: watch handshake failed")
	}
	if first := sc.Text(); first != "OK" {
		conn.Close()
		return nil, nil, fmt.Errorf("%w: %s", ErrServer, strings.TrimPrefix(first, "ERR "))
	}
	events := make(chan Event, 64)
	go func() {
		defer close(events)
		for sc.Scan() {
			ev, err := parseEventLine(sc.Text())
			if err != nil {
				return
			}
			events <- ev
		}
	}()
	return events, conn.Close, nil
}

func parseEventLine(line string) (Event, error) {
	fields := strings.SplitN(line, " ", 6)
	if len(fields) != 6 || fields[0] != "EVENT" {
		return Event{}, fmt.Errorf("kvstore: malformed event %q", line)
	}
	var typ EventType
	switch fields[1] {
	case "put":
		typ = EventPut
	case "delete":
		typ = EventDelete
	default:
		return Event{}, fmt.Errorf("kvstore: unknown event type %q", fields[1])
	}
	rev, err := parseInt(fields[3])
	if err != nil {
		return Event{}, err
	}
	leaseID, err := parseInt(fields[4])
	if err != nil {
		return Event{}, err
	}
	value, err := url.QueryUnescape(fields[5])
	if err != nil {
		return Event{}, err
	}
	return Event{Type: typ, Entry: Entry{Key: fields[2], Value: value, Rev: rev, Lease: LeaseID(leaseID)}}, nil
}

func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("kvstore: bad integer %q", s)
	}
	return v, nil
}
