package kvstore

import (
	"errors"
	"testing"

	"gemini/internal/simclock"
)

func TestUnavailableWindow(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	if _, err := s.Put("a", "1", 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	lid, err := s.Grant(10)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}

	s.SetAvailable(false)
	if s.Available() {
		t.Fatal("store reports available while down")
	}
	if _, err := s.Put("b", "2", 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put while down: err=%v, want ErrUnavailable", err)
	}
	if _, _, err := s.CompareAndSwap("a", 0, "x", 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("CAS while down: err=%v, want ErrUnavailable", err)
	}
	if _, err := s.Grant(5); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Grant while down: err=%v, want ErrUnavailable", err)
	}
	if err := s.KeepAlive(lid); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("KeepAlive while down: err=%v, want ErrUnavailable", err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get served data while down")
	}
	if got := s.Range(""); got != nil {
		t.Fatalf("Range while down returned %v", got)
	}
	if s.Delete("a") {
		t.Fatal("Delete succeeded while down")
	}
	if s.NextExpiry() != simclock.Forever {
		t.Fatal("NextExpiry while down should be Forever")
	}

	s.SetAvailable(true)
	if e, ok := s.Get("a"); !ok || e.Value != "1" {
		t.Fatalf("Get after restore: %+v %v", e, ok)
	}
}

// TestOutageFreezesLeases: a quorum-less etcd cannot expire leases, so an
// outage longer than a lease's TTL must not kill the lease; its remaining
// TTL is preserved across the window.
func TestOutageFreezesLeases(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	lid, err := s.Grant(10)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if _, err := s.Put("hb", "x", lid); err != nil {
		t.Fatalf("Put: %v", err)
	}

	clk.t = 7 // 3s of TTL left
	s.SetAvailable(false)
	clk.t = 100 // outage lasts 93s, far past the TTL
	s.SetAvailable(true)

	rem, ok := s.LeaseRemaining(lid)
	if !ok {
		t.Fatal("lease expired across the outage; TTL should have frozen")
	}
	if rem != 3 {
		t.Fatalf("lease remaining after restore = %v, want 3", rem)
	}
	if _, ok := s.Get("hb"); !ok {
		t.Fatal("leased key lost across the outage")
	}

	clk.t = 104 // 1s past the shifted expiry
	s.Sweep()
	if _, ok := s.Get("hb"); ok {
		t.Fatal("leased key survived past shifted expiry")
	}
}

// TestLeaseExpiryRacesCAS: a lease expiring at exactly the instant of a
// CompareAndSwap must be swept first, so a CAS guarding on the dying
// key's revision loses, and a CAS-create of the same key wins.
func TestLeaseExpiryRacesCAS(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.now)
	lid, err := s.Grant(10)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	rev, err := s.Put("leader", "old-root", lid)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	clk.t = 10 // lease expires exactly now
	_, won, err := s.CompareAndSwap("leader", rev, "usurper", 0)
	if err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if won {
		t.Fatal("CAS against an expired key's revision won; sweep must run first")
	}
	_, won, err = s.CompareAndSwap("leader", 0, "new-root", 0)
	if err != nil || !won {
		t.Fatalf("CAS-create after expiry: won=%v err=%v", won, err)
	}
	e, _ := s.Get("leader")
	if e.Value != "new-root" {
		t.Fatalf("leader = %q, want new-root", e.Value)
	}
}

func TestLeaseJitterDeterministic(t *testing.T) {
	expiries := func(seed int64) []simclock.Time {
		clk := &fakeClock{}
		s := New(clk.now)
		s.SetLeaseJitter(5, seed)
		var out []simclock.Time
		for i := 0; i < 4; i++ {
			lid, err := s.Grant(10)
			if err != nil {
				t.Fatalf("Grant: %v", err)
			}
			rem, _ := s.LeaseRemaining(lid)
			out = append(out, clk.now().Add(rem))
		}
		return out
	}
	a, b := expiries(1), expiries(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 10 || a[i] >= 15 {
			t.Fatalf("expiry %v outside [TTL, TTL+max)", a[i])
		}
	}
	c := expiries(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
