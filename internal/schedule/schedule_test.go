package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/profile"
	"gemini/internal/simclock"
)

func baseParams() Params {
	return Params{
		Spans: []profile.Span{
			{Offset: 0, Length: 1.0},
			{Offset: 5, Length: 2.0},
			{Offset: 10, Length: 0.5},
		},
		CheckpointBytes:      200,
		Replicas:             2,
		BufferBytes:          128,
		BufferParts:          4,
		BandwidthBytesPerSec: 100,
		Alpha:                0,
		Gamma:                1,
	}
}

func TestPartitionSchedulesAllReplicaBytes(t *testing.T) {
	p := baseParams()
	plan := MustPartition(p)
	want := float64(p.Replicas-1) * p.CheckpointBytes
	if got := plan.TotalBytes(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("scheduled %v bytes, want %v", got, want)
	}
	if !plan.Fits {
		t.Fatal("200 bytes should fit in 3.5s of idle at 100 B/s")
	}
	if plan.OverflowBytes != 0 || plan.OverflowTime != 0 {
		t.Fatalf("unexpected overflow %v / %v", plan.OverflowBytes, plan.OverflowTime)
	}
}

func TestPartitionRespectsSubBufferSize(t *testing.T) {
	p := baseParams()
	plan := MustPartition(p)
	maxChunk := p.BufferBytes / float64(p.BufferParts) // 32
	for i, c := range plan.Chunks {
		if c.Bytes > maxChunk+1e-9 {
			t.Fatalf("chunk %d has %v bytes, exceeds sub-buffer %v", i, c.Bytes, maxChunk)
		}
		if c.Bytes <= 0 {
			t.Fatalf("chunk %d has nonpositive size", i)
		}
	}
}

func TestPartitionChunksFitTheirSpans(t *testing.T) {
	p := baseParams()
	p.Alpha = 0.01
	plan := MustPartition(p)
	for i, span := range p.Spans {
		var used simclock.Duration
		for _, c := range plan.ChunksInSpan(i) {
			used += p.transferTime(c.Bytes)
		}
		if used > simclock.Duration(p.Gamma)*span.Length+1e-9 {
			t.Fatalf("span %d holds %v of traffic, capacity %v", i, used, span.Length)
		}
	}
}

func TestPartitionOverflowsIntoVirtualSpan(t *testing.T) {
	p := baseParams()
	p.CheckpointBytes = 10_000 // far more than 3.5s × 100 B/s can carry
	plan := MustPartition(p)
	if plan.Fits {
		t.Fatal("oversized checkpoint reported as fitting")
	}
	if plan.OverflowBytes <= 0 {
		t.Fatal("no overflow recorded")
	}
	if got := plan.TotalBytes(); math.Abs(got-10_000) > 1e-9 {
		t.Fatalf("scheduled %v bytes, want all 10000", got)
	}
	// Overflow chunks live in the virtual span past the last profiled one.
	overflow := plan.ChunksInSpan(len(p.Spans))
	if len(overflow) == 0 {
		t.Fatal("no chunks in the virtual span")
	}
	var ofBytes float64
	for _, c := range overflow {
		ofBytes += c.Bytes
	}
	if math.Abs(ofBytes-plan.OverflowBytes) > 1e-9 {
		t.Fatalf("overflow accounting mismatch: %v vs %v", ofBytes, plan.OverflowBytes)
	}
}

func TestPartitionMultipleReplicas(t *testing.T) {
	p := baseParams()
	p.Replicas = 3 // two remote replicas
	p.Spans = []profile.Span{{Offset: 0, Length: 100}}
	plan := MustPartition(p)
	seen := map[int]float64{}
	for _, c := range plan.Chunks {
		seen[c.Replica] += c.Bytes
	}
	if len(seen) != 2 {
		t.Fatalf("chunks cover replicas %v, want 2 replicas", seen)
	}
	for r, bytes := range seen {
		if math.Abs(bytes-p.CheckpointBytes) > 1e-9 {
			t.Fatalf("replica %d scheduled %v bytes, want %v", r, bytes, p.CheckpointBytes)
		}
	}
}

func TestPartitionSingleReplicaNeedsNoTraffic(t *testing.T) {
	p := baseParams()
	p.Replicas = 1
	plan := MustPartition(p)
	if len(plan.Chunks) != 0 || !plan.Fits {
		t.Fatalf("m=1 scheduled traffic: %+v", plan)
	}
}

func TestPartitionGammaShrinksCapacity(t *testing.T) {
	full := baseParams()
	full.CheckpointBytes = 340 // just under 3.5s × 100 B/s
	planFull := MustPartition(full)
	if !planFull.Fits {
		t.Fatal("γ=1 should fit 340 bytes")
	}
	half := full
	half.Gamma = 0.5
	planHalf := MustPartition(half)
	if planHalf.Fits {
		t.Fatal("γ=0.5 should not fit 340 bytes in 1.75s of usable idle")
	}
}

func TestPartitionAlphaConsumesSpans(t *testing.T) {
	p := baseParams()
	p.Alpha = 10 // every transfer costs 10s of startup; spans are ≤ 2s
	plan := MustPartition(p)
	// Nothing fits in the real spans: all traffic overflows.
	if plan.Fits || math.Abs(plan.OverflowBytes-p.CheckpointBytes) > 1e-9 {
		t.Fatalf("with huge alpha plan = %+v, want full overflow", plan)
	}
}

func TestPartitionZeroCheckpoint(t *testing.T) {
	p := baseParams()
	p.CheckpointBytes = 0
	plan := MustPartition(p)
	if len(plan.Chunks) != 0 || !plan.Fits {
		t.Fatalf("zero checkpoint produced chunks: %+v", plan)
	}
}

func TestPartitionValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.CheckpointBytes = -1 },
		func(p *Params) { p.Replicas = 0 },
		func(p *Params) { p.BufferBytes = 0 },
		func(p *Params) { p.BufferParts = 0 },
		func(p *Params) { p.BandwidthBytesPerSec = 0 },
		func(p *Params) { p.Alpha = -1 },
		func(p *Params) { p.Gamma = 0 },
		func(p *Params) { p.Gamma = 1.5 },
		func(p *Params) { p.Spans = []profile.Span{{Length: -1}} },
	}
	for i, mutate := range bad {
		p := baseParams()
		mutate(&p)
		if _, err := Partition(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPartition on bad params did not panic")
		}
	}()
	p := baseParams()
	p.Replicas = -1
	MustPartition(p)
}

func TestAnalyzeBaselineFree(t *testing.T) {
	a, err := AnalyzeScheme(SchemeBaseline, baseParams(), 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationOverhead != 0 || a.RequiredBufferBytes != 0 || a.OOM {
		t.Fatalf("baseline analysis %+v, want all zero", a)
	}
}

func TestAnalyzeBlockingCostsFullTransfer(t *testing.T) {
	p := baseParams()
	a, err := AnalyzeScheme(SchemeBlocking, p, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 200 bytes at 100 B/s transfer + 200 bytes at 100 B/s copy = 4s.
	if math.Abs(a.IterationOverhead.Seconds()-4) > 1e-9 {
		t.Fatalf("blocking overhead %v, want 4s", a.IterationOverhead)
	}
	if a.RequiredBufferBytes != p.BufferBytes {
		t.Fatalf("blocking buffer %v, want the chunked buffer %v", a.RequiredBufferBytes, p.BufferBytes)
	}
}

func TestAnalyzeNaiveOOMsWhenSpansAreLarge(t *testing.T) {
	p := baseParams()
	p.Spans = []profile.Span{{Offset: 0, Length: 100}} // carries 10,000 bytes
	a, err := AnalyzeScheme(SchemeNaive, p, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OOM {
		t.Fatalf("naive scheme should OOM: needs %v bytes with only 1000 available", a.RequiredBufferBytes)
	}
}

func TestAnalyzeNoPipelineSlowerThanGemini(t *testing.T) {
	p := baseParams()
	p.CheckpointBytes = 300 // close to capacity so copies matter
	noPipe, err := AnalyzeScheme(SchemeNoPipeline, p, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	gem, err := AnalyzeScheme(SchemeGemini, p, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if noPipe.IterationOverhead <= gem.IterationOverhead {
		t.Fatalf("no-pipeline overhead %v should exceed GEMINI %v", noPipe.IterationOverhead, gem.IterationOverhead)
	}
}

func TestAnalyzeGeminiZeroOverheadWhenFits(t *testing.T) {
	a, err := AnalyzeScheme(SchemeGemini, baseParams(), 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationOverhead != 0 || a.OOM {
		t.Fatalf("GEMINI analysis %+v, want zero overhead", a)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := AnalyzeScheme(SchemeGemini, baseParams(), -1, 100); err == nil {
		t.Error("negative GPU budget accepted")
	}
	if _, err := AnalyzeScheme(SchemeGemini, baseParams(), 100, 0); err == nil {
		t.Error("zero copy bandwidth accepted")
	}
	if _, err := AnalyzeScheme(Scheme(42), baseParams(), 100, 100); err == nil {
		t.Error("unknown scheme accepted")
	}
	p := baseParams()
	p.Gamma = -1
	if _, err := AnalyzeScheme(SchemeBaseline, p, 100, 100); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeBaseline:   "Baseline",
		SchemeBlocking:   "Blocking",
		SchemeNaive:      "Naive interleave",
		SchemeNoPipeline: "Interleave w/o pipeline",
		SchemeGemini:     "GEMINI",
		Scheme(9):        "Scheme(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: Partition always schedules exactly (m−1)·C bytes, chunks
// never exceed R/p, and overflow is zero iff Fits.
func TestPropertyPartitionInvariants(t *testing.T) {
	f := func(ckptRaw, bufRaw uint16, partsRaw, replicasRaw, spansRaw uint8, gammaRaw uint8) bool {
		p := Params{
			CheckpointBytes:      float64(ckptRaw),
			Replicas:             int(replicasRaw%4) + 1,
			BufferBytes:          float64(bufRaw%2000) + 1,
			BufferParts:          int(partsRaw%8) + 1,
			BandwidthBytesPerSec: 100,
			Alpha:                0.001,
			Gamma:                float64(gammaRaw%9+1) / 10,
		}
		for i := 0; i < int(spansRaw%6); i++ {
			p.Spans = append(p.Spans, profile.Span{
				Offset: simclock.Duration(i * 10),
				Length: simclock.Duration(i%3) + 0.5,
			})
		}
		plan, err := Partition(p)
		if err != nil {
			return false
		}
		// Relative tolerance: TotalBytes sums thousands of chunks when the
		// buffer is tiny, so absolute error scales with the byte count.
		want := float64(p.Replicas-1) * p.CheckpointBytes
		if math.Abs(plan.TotalBytes()-want) > 1e-9*math.Max(1, want) {
			return false
		}
		maxChunk := p.BufferBytes/float64(p.BufferParts) + 1e-9
		for _, c := range plan.Chunks {
			if c.Bytes > maxChunk || c.Bytes <= 0 {
				return false
			}
			if c.Span < 0 || c.Span > len(p.Spans) {
				return false
			}
		}
		return plan.Fits == (plan.OverflowBytes == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: more idle time never increases overflow.
func TestPropertyMoreIdleNeverWorse(t *testing.T) {
	f := func(extraRaw uint8) bool {
		base := baseParams()
		base.CheckpointBytes = 2000
		planA := MustPartition(base)
		grown := base
		grown.Spans = append([]profile.Span(nil), base.Spans...)
		grown.Spans = append(grown.Spans, profile.Span{Offset: 20, Length: simclock.Duration(extraRaw % 50)})
		planB := MustPartition(grown)
		return planB.OverflowBytes <= planA.OverflowBytes+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// IdleUtilization is the health monitor's Algorithm 2 gauge: the
// fraction of checkpoint traffic hidden inside profiled idle spans.
func TestPlanIdleUtilization(t *testing.T) {
	// A fitting plan is fully utilized.
	p := baseParams()
	if u := MustPartition(p).IdleUtilization(); math.Abs(u-1) > 1e-12 {
		t.Fatalf("fitting plan utilization %v, want 1", u)
	}
	// An overflowing plan reports exactly the in-span fraction.
	p.CheckpointBytes = 10_000
	plan := MustPartition(p)
	want := (plan.TotalBytes() - plan.OverflowBytes) / plan.TotalBytes()
	if u := plan.IdleUtilization(); math.Abs(u-want) > 1e-12 {
		t.Fatalf("overflowing plan utilization %v, want %v", u, want)
	}
	if u := plan.IdleUtilization(); u <= 0 || u >= 1 {
		t.Fatalf("overflowing plan utilization %v, want strictly inside (0, 1)", u)
	}
	// An empty plan wastes nothing: utilization 1 by convention.
	empty := &Plan{}
	if u := empty.IdleUtilization(); u != 1 {
		t.Fatalf("empty plan utilization %v, want 1", u)
	}
	// Fully-overflowing synthetic plan: utilization 0.
	allOver := &Plan{Chunks: []Chunk{{Span: 1, Bytes: 50}}, OverflowBytes: 50}
	if u := allOver.IdleUtilization(); u != 0 {
		t.Fatalf("all-overflow plan utilization %v, want 0", u)
	}
}
