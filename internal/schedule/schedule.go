// Package schedule implements GEMINI's checkpoint traffic scheduling
// (§5): Algorithm 2, which partitions the m−1 remote checkpoint replicas
// into chunks sized to the profiled network idle timespans and to the
// reserved GPU buffer, and the alternative interleaving schemes the paper
// ablates in §7.4 (blocking, naive interleave, interleave without
// pipeline).
package schedule

import (
	"fmt"
	"math"

	"gemini/internal/profile"
	"gemini/internal/simclock"
)

// Params configures Algorithm 2.
type Params struct {
	// Spans are the profiled network idle timespans of one iteration,
	// in time order (the T = {t₁…t_d} of Algorithm 2).
	Spans []profile.Span
	// CheckpointBytes is C: the size of one checkpoint replica (this
	// machine's shard).
	CheckpointBytes float64
	// Replicas is m; m−1 replicas travel over the network.
	Replicas int
	// BufferBytes is R, the total reserved GPU memory for checkpoint
	// communication (128 MB in the paper's implementation).
	BufferBytes float64
	// BufferParts is p, the number of pipeline sub-buffers (4 in GEMINI;
	// 1 disables pipelining).
	BufferParts int
	// BandwidthBytesPerSec is B, the inter-machine network bandwidth.
	BandwidthBytesPerSec float64
	// Alpha is the transfer startup latency α in f(s) = α + s/B.
	Alpha simclock.Duration
	// Gamma is the γ ∈ (0,1] safety coefficient discounting each idle
	// span for cross-iteration variance.
	Gamma float64
}

func (p Params) validate() error {
	switch {
	case p.CheckpointBytes < 0:
		return fmt.Errorf("schedule: negative checkpoint size %v", p.CheckpointBytes)
	case p.Replicas < 1:
		return fmt.Errorf("schedule: replicas must be ≥ 1, got %d", p.Replicas)
	case p.BufferBytes <= 0:
		return fmt.Errorf("schedule: buffer size must be positive, got %v", p.BufferBytes)
	case p.BufferParts < 1:
		return fmt.Errorf("schedule: buffer parts must be ≥ 1, got %d", p.BufferParts)
	case p.BandwidthBytesPerSec <= 0:
		return fmt.Errorf("schedule: bandwidth must be positive, got %v", p.BandwidthBytesPerSec)
	case p.Alpha < 0:
		return fmt.Errorf("schedule: negative alpha %v", p.Alpha)
	case p.Gamma <= 0 || p.Gamma > 1:
		return fmt.Errorf("schedule: gamma must be in (0,1], got %v", p.Gamma)
	}
	for i, s := range p.Spans {
		if s.Length < 0 {
			return fmt.Errorf("schedule: span %d has negative length", i)
		}
	}
	return nil
}

// AutoGamma derives Algorithm 2's safety coefficient from the profiled
// cross-iteration variance: idle spans are discounted by twice the
// normalized standard deviation (two sigmas of shrinkage), clamped to
// [0.5, 1]. With the paper's observed <10% deviation this yields
// γ ∈ [0.8, 1].
func AutoGamma(normalizedStdDev float64) float64 {
	if normalizedStdDev < 0 {
		panic(fmt.Sprintf("schedule: negative stddev %v", normalizedStdDev))
	}
	gamma := 1 - 2*normalizedStdDev
	if gamma < 0.5 {
		return 0.5
	}
	return gamma
}

// transferTime is f(s) = α + s/B.
func (p Params) transferTime(bytes float64) simclock.Duration {
	return p.Alpha + simclock.Duration(bytes/p.BandwidthBytesPerSec)
}

// Chunk is one scheduled checkpoint partition: bytes of replica Replica
// transmitted inside idle span Span (Span == len(Spans) means the
// overflow region appended past the last profiled span).
type Chunk struct {
	Span    int
	Replica int
	Bytes   float64
}

// Plan is Algorithm 2's output.
type Plan struct {
	Chunks []Chunk
	// Fits reports whether all replica traffic fit inside the profiled
	// idle spans (no overflow into the update phase).
	Fits bool
	// OverflowBytes is the traffic that had to be placed in the virtual
	// last span (Line 2's t[d] = +∞); it prolongs the iteration.
	OverflowBytes float64
	// OverflowTime is how long the overflow traffic extends the
	// iteration: the f(·) cost of the overflow chunks.
	OverflowTime simclock.Duration
}

// TotalBytes returns the bytes scheduled across all chunks.
func (pl *Plan) TotalBytes() float64 {
	var total float64
	for _, c := range pl.Chunks {
		total += c.Bytes
	}
	return total
}

// IdleUtilization returns the fraction of scheduled checkpoint bytes
// that fit inside profiled idle spans rather than overflowing into the
// update phase — the quantity Algorithm 2 maximizes, reported by the
// health monitor as health.idle_utilization. An empty plan wastes no
// training time, so it counts as fully utilized (1).
func (pl *Plan) IdleUtilization() float64 {
	total := pl.TotalBytes()
	if total == 0 {
		return 1
	}
	return (total - pl.OverflowBytes) / total
}

// ChunksInSpan returns the chunks scheduled into span index i.
func (pl *Plan) ChunksInSpan(i int) []Chunk {
	var out []Chunk
	for _, c := range pl.Chunks {
		if c.Span == i {
			out = append(out, c)
		}
	}
	return out
}

// Partition is Algorithm 2: it packs the m−1 remote checkpoint replicas
// into the idle spans, chunk by chunk, never exceeding the sub-buffer
// size R/p, and spills whatever remains into a virtual unbounded span
// after the last profiled one.
func Partition(p Params) (*Plan, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Fits: true}
	remoteReplicas := p.Replicas - 1
	if remoteReplicas == 0 || p.CheckpointBytes == 0 {
		return plan, nil
	}
	maxChunk := p.BufferBytes / float64(p.BufferParts)
	replica := 0
	remainSize := p.CheckpointBytes

	// place consumes one idle span (or the infinite overflow span when
	// spanLen is +Inf) and returns true when all replicas are scheduled.
	place := func(spanIdx int, spanLen simclock.Duration) bool {
		remainSpan := simclock.Duration(p.Gamma) * spanLen
		infinite := math.IsInf(float64(spanLen), 1)
		for remainSpan > 0 {
			var size float64
			if infinite || remainSpan >= p.transferTime(maxChunk) {
				size = maxChunk
			} else {
				size = math.Max(0, (remainSpan-p.Alpha).Seconds()*p.BandwidthBytesPerSec)
			}
			size = math.Min(remainSize, size)
			if size <= 0 {
				return false
			}
			remainSize -= size
			if !infinite {
				remainSpan -= p.transferTime(size)
			}
			plan.Chunks = append(plan.Chunks, Chunk{Span: spanIdx, Replica: replica, Bytes: size})
			if infinite {
				plan.Fits = false
				plan.OverflowBytes += size
				plan.OverflowTime += p.transferTime(size)
			}
			if remainSize == 0 {
				if replica < remoteReplicas-1 {
					replica++
					remainSize = p.CheckpointBytes
				} else {
					return true
				}
			}
		}
		return false
	}

	for i, span := range p.Spans {
		if place(i, span.Length) {
			return plan, nil
		}
	}
	// Line 2 of Algorithm 2: the last span is +∞ — whatever remains goes
	// there and blocks the update phase.
	if !place(len(p.Spans), simclock.Duration(math.Inf(1))) {
		panic("schedule: infinite span failed to absorb remaining checkpoint traffic")
	}
	return plan, nil
}

// MustPartition is Partition for known-good parameters.
func MustPartition(p Params) *Plan {
	plan, err := Partition(p)
	if err != nil {
		panic(err)
	}
	return plan
}

// Scheme is one of the §7.4 interleaving schemes.
type Scheme int

const (
	// SchemeBaseline performs no checkpointing.
	SchemeBaseline Scheme = iota
	// SchemeBlocking sends the whole checkpoint at the start of the next
	// iteration, blocking training traffic (Fig. 4b).
	SchemeBlocking
	// SchemeNaive puts exactly one partition in each idle timespan,
	// requiring a GPU buffer as large as the span can carry (Fig. 5c
	// precursor; OOMs for large models).
	SchemeNaive
	// SchemeNoPipeline partitions into buffer-sized chunks but uses a
	// single buffer, so every chunk's GPU→CPU copy blocks the next
	// network transfer (Fig. 5c).
	SchemeNoPipeline
	// SchemeGemini pipelines chunks across p sub-buffers so copies
	// overlap transfers (Fig. 5d).
	SchemeGemini
)

func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "Baseline"
	case SchemeBlocking:
		return "Blocking"
	case SchemeNaive:
		return "Naive interleave"
	case SchemeNoPipeline:
		return "Interleave w/o pipeline"
	case SchemeGemini:
		return "GEMINI"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SchemeAnalysis is the static cost analysis of one interleaving scheme:
// the per-iteration overhead it adds on top of the baseline iteration
// time, and the GPU memory it needs for checkpoint communication.
type SchemeAnalysis struct {
	Scheme Scheme
	// IterationOverhead is added to the baseline iteration time.
	IterationOverhead simclock.Duration
	// RequiredBufferBytes is the GPU memory the scheme needs.
	RequiredBufferBytes float64
	// OOM reports that the required buffer exceeds the available GPU
	// memory.
	OOM bool
}

// AnalyzeScheme computes the static analysis for one scheme.
// availGPUBytes is the free GPU memory for checkpoint buffers;
// copyBandwidth is the GPU→CPU bandwidth on the receiver.
func AnalyzeScheme(s Scheme, p Params, availGPUBytes, copyBandwidth float64) (SchemeAnalysis, error) {
	if err := p.validate(); err != nil {
		return SchemeAnalysis{}, err
	}
	if availGPUBytes < 0 || copyBandwidth <= 0 {
		return SchemeAnalysis{}, fmt.Errorf("schedule: bad GPU budget %v / copy bandwidth %v", availGPUBytes, copyBandwidth)
	}
	out := SchemeAnalysis{Scheme: s}
	remote := float64(p.Replicas-1) * p.CheckpointBytes
	copyTime := func(bytes float64) simclock.Duration {
		return simclock.Duration(bytes / copyBandwidth)
	}
	switch s {
	case SchemeBaseline:
		return out, nil
	case SchemeBlocking:
		// Whole checkpoint streamed up front through the chunked buffer,
		// unpipelined: transfer + receiver copy are serial with training.
		out.RequiredBufferBytes = p.BufferBytes
		out.IterationOverhead = p.transferTime(remote) + copyTime(remote)
	case SchemeNaive:
		// One partition per idle span: partition size is what the span
		// can carry, so the buffer must hold the largest span's traffic.
		var largest float64
		for _, span := range p.Spans {
			carry := math.Max(0, (simclock.Duration(p.Gamma)*span.Length-p.Alpha).Seconds()*p.BandwidthBytesPerSec)
			largest = math.Max(largest, carry)
		}
		out.RequiredBufferBytes = largest
		// Whatever the d spans cannot carry in d partitions overflows.
		var carried float64
		for _, span := range p.Spans {
			carry := math.Max(0, (simclock.Duration(p.Gamma)*span.Length-p.Alpha).Seconds()*p.BandwidthBytesPerSec)
			carried += math.Min(carry, largest)
		}
		if carried < remote {
			out.IterationOverhead = p.transferTime(remote - carried)
		}
	case SchemeNoPipeline:
		// Single buffer: each chunk costs f(size) + copy(size) of idle
		// time because the copy blocks the next transfer. Effectively the
		// usable idle bandwidth is halved (§7.4 measures +3.5%).
		out.RequiredBufferBytes = p.BufferBytes
		chunk := p.BufferBytes
		perChunk := p.transferTime(chunk) + copyTime(chunk)
		chunks := math.Ceil(remote / chunk)
		need := simclock.Duration(chunks) * perChunk
		avail := simclock.Duration(0)
		for _, span := range p.Spans {
			avail += simclock.Duration(p.Gamma) * span.Length
		}
		if need > avail {
			out.IterationOverhead = need - avail
		}
	case SchemeGemini:
		// Pipelined: copies overlap transfers, so only Algorithm 2's
		// overflow (if any) costs iteration time.
		out.RequiredBufferBytes = p.BufferBytes
		plan, err := Partition(p)
		if err != nil {
			return SchemeAnalysis{}, err
		}
		out.IterationOverhead = plan.OverflowTime
	default:
		return SchemeAnalysis{}, fmt.Errorf("schedule: unknown scheme %d", int(s))
	}
	out.OOM = out.RequiredBufferBytes > availGPUBytes
	return out, nil
}
