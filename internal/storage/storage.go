// Package storage provides the two checkpoint destinations below the
// training machines' own CPU memory: the remote persistent store (the
// FSx-like filesystem whose ~20 Gbps aggregate bandwidth is what limits
// existing checkpointing solutions, §2.2) and the per-machine CPU-memory
// stores GEMINI writes its recovery checkpoints into.
package storage

import (
	"fmt"
	"sort"

	"gemini/internal/netsim"
	"gemini/internal/simclock"
	"gemini/internal/tensor"
)

// Object is a stored checkpoint shard: sized payload plus the metadata
// recovery needs. Payload may be nil when only timing is simulated.
type Object struct {
	Key       string
	Bytes     float64
	Iteration int64
	Shard     int
	Payload   *tensor.State
}

// MemoryStore is one machine's CPU-memory checkpoint area. Capacity is
// enforced: GEMINI reserves exactly two checkpoint buffers per replica
// (one complete, one in progress, §7.1), and the store refuses writes
// that would exceed what was provisioned.
type MemoryStore struct {
	capacity float64
	used     float64
	objects  map[string]Object
}

// NewMemoryStore creates a store with the given byte capacity.
func NewMemoryStore(capacity float64) (*MemoryStore, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("storage: negative capacity %v", capacity)
	}
	return &MemoryStore{capacity: capacity, objects: make(map[string]Object)}, nil
}

// MustNewMemoryStore is NewMemoryStore for known-good capacities.
func MustNewMemoryStore(capacity float64) *MemoryStore {
	s, err := NewMemoryStore(capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Capacity returns the store's byte capacity.
func (s *MemoryStore) Capacity() float64 { return s.capacity }

// Used returns the bytes currently stored.
func (s *MemoryStore) Used() float64 { return s.used }

// Len returns the number of stored objects.
func (s *MemoryStore) Len() int { return len(s.objects) }

// Put stores an object, replacing any object under the same key. It fails
// if the store would exceed capacity.
func (s *MemoryStore) Put(obj Object) error {
	if obj.Bytes < 0 {
		return fmt.Errorf("storage: object %q has negative size", obj.Key)
	}
	prev := 0.0
	if old, ok := s.objects[obj.Key]; ok {
		prev = old.Bytes
	}
	if s.used-prev+obj.Bytes > s.capacity {
		return fmt.Errorf("storage: %q (%.0f bytes) exceeds capacity: used %.0f of %.0f",
			obj.Key, obj.Bytes, s.used, s.capacity)
	}
	s.used += obj.Bytes - prev
	s.objects[obj.Key] = obj
	return nil
}

// Get returns the object under key.
func (s *MemoryStore) Get(key string) (Object, bool) {
	obj, ok := s.objects[key]
	return obj, ok
}

// Delete removes the object under key, if present.
func (s *MemoryStore) Delete(key string) {
	if obj, ok := s.objects[key]; ok {
		s.used -= obj.Bytes
		delete(s.objects, key)
	}
}

// Keys returns all keys in sorted order.
func (s *MemoryStore) Keys() []string {
	out := make([]string, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Wipe drops everything — what a hardware failure does to a machine's
// CPU-memory checkpoints.
func (s *MemoryStore) Wipe() {
	s.objects = make(map[string]Object)
	s.used = 0
}

// RemoteStore is the remote persistent storage service. All machines'
// reads and writes share its aggregate bandwidth; transfers are carried
// as flows on the cluster fabric, to and from a dedicated storage node,
// so they contend with any concurrent training traffic on the machines'
// NICs as well.
type RemoteStore struct {
	engine  *simclock.Engine
	fabric  *netsim.Fabric
	node    int // the storage endpoint on the fabric
	objects map[string]Object
}

// NewRemoteStore attaches a persistent store to fabric endpoint node with
// the given aggregate bandwidth in bytes/sec.
func NewRemoteStore(engine *simclock.Engine, fabric *netsim.Fabric, node int, aggBytesPerSec float64) (*RemoteStore, error) {
	if aggBytesPerSec <= 0 {
		return nil, fmt.Errorf("storage: aggregate bandwidth must be positive, got %v", aggBytesPerSec)
	}
	fabric.SetNodeCapacity(node, aggBytesPerSec, aggBytesPerSec)
	return &RemoteStore{
		engine:  engine,
		fabric:  fabric,
		node:    node,
		objects: make(map[string]Object),
	}, nil
}

// Node returns the fabric endpoint the store occupies.
func (r *RemoteStore) Node() int { return r.node }

// Has reports whether an object exists under key.
func (r *RemoteStore) Has(key string) bool {
	_, ok := r.objects[key]
	return ok
}

// Lookup returns the object's metadata without transferring it.
func (r *RemoteStore) Lookup(key string) (Object, bool) {
	obj, ok := r.objects[key]
	return obj, ok
}

// Keys returns all keys in sorted order.
func (r *RemoteStore) Keys() []string {
	out := make([]string, 0, len(r.objects))
	for k := range r.objects {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Write uploads an object from machine node src. done fires when the
// upload completes (ok) or the source fails mid-transfer (!ok). The
// object becomes visible only on completion — a failure mid-upload leaves
// the previous version intact, never a torn object.
func (r *RemoteStore) Write(src int, obj Object, done func(ok bool)) {
	r.fabric.StartFlow(src, r.node, obj.Bytes, "ckpt-upload:"+obj.Key, func(fl *netsim.Flow) {
		ok := fl.State() == netsim.FlowDone
		if ok {
			r.objects[obj.Key] = obj
		}
		if done != nil {
			done(ok)
		}
	})
}

// Read downloads the object under key to machine node dst. done receives
// the object and ok=true on success; a missing key or failed transfer
// reports ok=false.
func (r *RemoteStore) Read(key string, dst int, done func(Object, bool)) {
	obj, ok := r.objects[key]
	if !ok {
		r.engine.After(0, func() { done(Object{}, false) })
		return
	}
	r.fabric.StartFlow(r.node, dst, obj.Bytes, "ckpt-download:"+key, func(fl *netsim.Flow) {
		if fl.State() == netsim.FlowDone {
			done(obj, true)
		} else {
			done(Object{}, false)
		}
	})
}

// Delete removes an object.
func (r *RemoteStore) Delete(key string) { delete(r.objects, key) }
