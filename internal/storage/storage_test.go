package storage

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/netsim"
	"gemini/internal/simclock"
)

const gbps = 1e9 / 8

func TestMemoryStorePutGetDelete(t *testing.T) {
	s := MustNewMemoryStore(1000)
	if err := s.Put(Object{Key: "a", Bytes: 400, Iteration: 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(Object{Key: "b", Bytes: 500, Iteration: 2}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if s.Used() != 900 || s.Len() != 2 {
		t.Fatalf("used=%v len=%d", s.Used(), s.Len())
	}
	obj, ok := s.Get("a")
	if !ok || obj.Iteration != 1 {
		t.Fatalf("Get(a) = %+v, %v", obj, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get invented an object")
	}
	s.Delete("a")
	if s.Used() != 500 || s.Len() != 1 {
		t.Fatalf("after delete used=%v len=%d", s.Used(), s.Len())
	}
	s.Delete("missing") // no-op
}

func TestMemoryStoreCapacityEnforced(t *testing.T) {
	s := MustNewMemoryStore(1000)
	if err := s.Put(Object{Key: "a", Bytes: 800}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Object{Key: "b", Bytes: 300}); err == nil {
		t.Fatal("over-capacity Put accepted")
	}
	// Replacing the same key counts the delta, not the sum.
	if err := s.Put(Object{Key: "a", Bytes: 900}); err != nil {
		t.Fatalf("in-place grow rejected: %v", err)
	}
	if s.Used() != 900 {
		t.Fatalf("used %v, want 900", s.Used())
	}
	if err := s.Put(Object{Key: "c", Bytes: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestMemoryStoreWipe(t *testing.T) {
	s := MustNewMemoryStore(100)
	if err := s.Put(Object{Key: "a", Bytes: 50}); err != nil {
		t.Fatal(err)
	}
	s.Wipe()
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatal("wipe left residue")
	}
}

func TestMemoryStoreKeysSorted(t *testing.T) {
	s := MustNewMemoryStore(100)
	for _, k := range []string{"c", "a", "b"} {
		if err := s.Put(Object{Key: k, Bytes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v, want sorted [a b c]", keys)
	}
}

func TestNewMemoryStoreRejectsNegative(t *testing.T) {
	if _, err := NewMemoryStore(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// remoteFixture builds 2 machines + storage node fabric with fast NICs
// and a slow store, the shape of the paper's testbed.
func remoteFixture(t *testing.T) (*simclock.Engine, *netsim.Fabric, *RemoteStore) {
	t.Helper()
	e := simclock.NewEngine()
	fab := netsim.MustNewFabric(e, 3, netsim.Config{EgressBytesPerSec: 400 * gbps})
	rs, err := NewRemoteStore(e, fab, 2, 20*gbps)
	if err != nil {
		t.Fatalf("NewRemoteStore: %v", err)
	}
	return e, fab, rs
}

func TestRemoteStoreWriteReadTiming(t *testing.T) {
	e, _, rs := remoteFixture(t)
	const size = 25e9 // 25 GB at 20 Gbps = 10 s
	var wrote simclock.Time
	rs.Write(0, Object{Key: "ckpt/1", Bytes: size, Iteration: 1}, func(ok bool) {
		if !ok {
			t.Error("write failed")
		}
		wrote = e.Now()
	})
	e.RunAll()
	if want := size / (20 * gbps); math.Abs(float64(wrote)-want) > 1e-6 {
		t.Fatalf("write finished at %v, want %v", wrote, want)
	}
	if !rs.Has("ckpt/1") {
		t.Fatal("object missing after write")
	}
	var read simclock.Time
	rs.Read("ckpt/1", 1, func(obj Object, ok bool) {
		if !ok || obj.Iteration != 1 {
			t.Errorf("read got %+v, %v", obj, ok)
		}
		read = e.Now()
	})
	e.RunAll()
	if want := float64(wrote) + size/(20*gbps); math.Abs(float64(read)-want) > 1e-6 {
		t.Fatalf("read finished at %v, want %v", read, want)
	}
}

func TestRemoteStoreAggregateBandwidthShared(t *testing.T) {
	// Two machines upload simultaneously: the 20 Gbps store ingress is the
	// bottleneck, so each upload takes twice as long as alone.
	e, _, rs := remoteFixture(t)
	const size = 25e9
	var done []simclock.Time
	for src := 0; src < 2; src++ {
		rs.Write(src, Object{Key: "k" + string(rune('0'+src)), Bytes: size}, func(bool) {
			done = append(done, e.Now())
		})
	}
	e.RunAll()
	want := 2 * size / (20 * gbps)
	for _, d := range done {
		if math.Abs(float64(d)-want) > 1e-3 {
			t.Fatalf("shared upload finished at %v, want %v", d, want)
		}
	}
}

func TestRemoteStoreReadMissingKey(t *testing.T) {
	e, _, rs := remoteFixture(t)
	called := false
	rs.Read("absent", 0, func(_ Object, ok bool) {
		called = true
		if ok {
			t.Error("missing key read ok")
		}
	})
	e.RunAll()
	if !called {
		t.Fatal("callback for missing key never fired")
	}
}

func TestRemoteStoreFailedUploadLeavesOldVersion(t *testing.T) {
	e, fab, rs := remoteFixture(t)
	rs.Write(0, Object{Key: "ckpt", Bytes: 1e9, Iteration: 1}, nil)
	e.RunAll()
	// Second upload dies when the source machine fails mid-transfer.
	var failed bool
	rs.Write(0, Object{Key: "ckpt", Bytes: 50e9, Iteration: 2}, func(ok bool) { failed = !ok })
	e.At(e.Now().Add(1), func() { fab.SetNodeUp(0, false) })
	e.RunAll()
	if !failed {
		t.Fatal("interrupted upload reported success")
	}
	obj, ok := rs.Lookup("ckpt")
	if !ok || obj.Iteration != 1 {
		t.Fatalf("store holds %+v, want intact iteration-1 object", obj)
	}
}

func TestRemoteStoreDeleteAndKeys(t *testing.T) {
	e, _, rs := remoteFixture(t)
	rs.Write(0, Object{Key: "b", Bytes: 1}, nil)
	rs.Write(0, Object{Key: "a", Bytes: 1}, nil)
	e.RunAll()
	keys := rs.Keys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Keys = %v", keys)
	}
	rs.Delete("a")
	if rs.Has("a") {
		t.Fatal("deleted key still present")
	}
	if rs.Node() != 2 {
		t.Fatalf("Node = %d, want 2", rs.Node())
	}
}

func TestNewRemoteStoreRejectsBadBandwidth(t *testing.T) {
	e := simclock.NewEngine()
	fab := netsim.MustNewFabric(e, 2, netsim.Config{EgressBytesPerSec: 1})
	if _, err := NewRemoteStore(e, fab, 1, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

// Property: MemoryStore used-bytes always equals the sum of stored object
// sizes and never exceeds capacity, across random op sequences.
func TestPropertyMemoryStoreAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		s := MustNewMemoryStore(10000)
		for _, op := range ops {
			key := string(rune('a' + op%7))
			size := float64(op % 4000)
			switch (op / 7) % 3 {
			case 0, 1:
				_ = s.Put(Object{Key: key, Bytes: size})
			case 2:
				s.Delete(key)
			}
			var sum float64
			for _, k := range s.Keys() {
				obj, _ := s.Get(k)
				sum += obj.Bytes
			}
			if math.Abs(sum-s.Used()) > 1e-9 || s.Used() > s.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
