// Package gemini is a simulation-grade reproduction of "GEMINI: Fast
// Failure Recovery in Distributed Training with In-Memory Checkpoints"
// (SOSP 2023): checkpoint large-model training state into the CPU memory
// of the training machines themselves — placed by a provably
// near-optimal replica strategy and transmitted inside the network's
// idle timespans — so failure recovery takes seconds instead of tens of
// minutes.
//
// The package exposes the whole system the paper describes:
//
//   - Placement (Algorithm 1): group/ring/mixed checkpoint placement with
//     the Theorem 1 optimality analysis and Corollary 1 probabilities.
//   - Traffic scheduling (Algorithm 2): partition checkpoints into the
//     profiled idle spans of the ZeRO-3 iteration timeline and pipeline
//     them through GPU sub-buffers.
//   - A deterministic discrete-event substrate (virtual clock, max-min
//     fair network fabric, GPU→CPU copy channels) standing in for the
//     paper's A100/V100 testbed.
//   - The failure-recovery control plane: worker/root agents, an
//     etcd-like lease/watch/election store, cloud-operator machine
//     replacement, and the three recovery paths (local, peer, remote).
//   - The evaluation harness reproducing every table and figure of §7.
//
// # Quickstart
//
//	job, err := gemini.NewJob(gemini.JobSpec{
//		Model:    "GPT-2 100B",
//		Instance: "p4d.24xlarge",
//		Machines: 16,
//	})
//	if err != nil { ... }
//	fmt.Println(job.Timeline.Iteration)        // ≈62 s
//	fmt.Println(job.RecoveryProbability(2))    // 0.933
//	res, _ := job.ExecuteScheme(gemini.SchemeGemini)
//	fmt.Println(res.Overhead())                // ≈0
//
// See the examples/ directory for runnable end-to-end scenarios and
// cmd/benchtables for the paper's tables and figures.
package gemini

import (
	"gemini/internal/baselines"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/core"
	"gemini/internal/failure"
	"gemini/internal/model"
	"gemini/internal/placement"
	"gemini/internal/runsim"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/training"
)

// Core job API.
type (
	// JobSpec names a training job: a Table 2 model, a Table 1 instance
	// type, the machine count, and the checkpoint replica count.
	JobSpec = core.JobSpec
	// Job is a fully derived GEMINI deployment: placement, profiled
	// timeline, checkpoint plan, and solution specs.
	Job = core.Job
)

// NewJob derives a GEMINI deployment from a job spec, validating GPU and
// CPU memory budgets.
func NewJob(spec JobSpec) (*Job, error) { return core.NewJob(spec) }

// MustNewJob is NewJob for known-good specs.
func MustNewJob(spec JobSpec) *Job { return core.MustNewJob(spec) }

// Virtual time.
type (
	// Time is virtual seconds since simulation start.
	Time = simclock.Time
	// Duration is a span of virtual time in seconds.
	Duration = simclock.Duration
)

// Duration units.
const (
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
	Minute      = simclock.Minute
	Hour        = simclock.Hour
	Day         = simclock.Day
)

// Checkpoint placement (Algorithm 1 and its analysis).
type Placement = placement.Placement

// Placement constructors and probability analysis.
var (
	// NewPlacement is Algorithm 1: group placement when m | N, otherwise
	// group + trailing ring.
	NewPlacement = placement.Mixed
	// NewRingPlacement is the pure ring strategy the paper compares
	// against in Figure 9.
	NewRingPlacement = placement.Ring
	// Corollary1 is the closed-form CPU-memory recovery probability for
	// the group strategy.
	Corollary1 = placement.Corollary1
	// RecoveryProbabilityExact enumerates a placement's recovery
	// probability under k simultaneous failures (N ≤ 32).
	RecoveryProbabilityExact = placement.BitmaskProbability
	// RecoveryProbabilityMonteCarlo estimates it for large clusters.
	RecoveryProbabilityMonteCarlo = placement.MonteCarlo
)

// Interleaving schemes of §7.4 (Figure 16).
type Scheme = schedule.Scheme

// Scheme values.
const (
	SchemeBaseline   = schedule.SchemeBaseline
	SchemeBlocking   = schedule.SchemeBlocking
	SchemeNaive      = schedule.SchemeNaive
	SchemeNoPipeline = schedule.SchemeNoPipeline
	SchemeGemini     = schedule.SchemeGemini
)

// ExecResult is what the interference executor measures for a scheme.
type ExecResult = training.ExecResult

// Parallelism selects the distribution strategy (§9 extension).
type Parallelism = training.Parallelism

// Parallelism values.
const (
	ParallelismZeRO3    = training.ZeRO3
	ParallelismData     = training.DataParallel
	ParallelismPipeline = training.PipelineParallel
)

// Checkpointing solutions (§7.1) and failure economics (§7.3).
type (
	// Spec describes one checkpointing solution's behavior.
	Spec = baselines.Spec
	// RunResult is the long-run effective-training-time accounting.
	RunResult = runsim.Result
	// FailureSchedule is a time-ordered list of injected failures.
	FailureSchedule = failure.Schedule
	// FailureModel is a stochastic per-instance failure-rate model.
	FailureModel = failure.Model
	// FailureEvent is one injected failure.
	FailureEvent = failure.Event
)

// Failure kinds (§6.1).
const (
	SoftwareFailure = cluster.SoftwareFailed
	HardwareFailure = cluster.HardwareFailed
)

// RecoverySource says which storage tier a recovery reads from.
type RecoverySource = baselines.RecoverySource

// Recovery sources, fastest first (§3.1's hierarchy).
const (
	FromLocalCPU         = baselines.FromLocal
	FromPeerCPU          = baselines.FromPeer
	FromPersistentRemote = baselines.FromRemote
)

// Failure-model helpers.
var (
	// OPTFailureModel is the OPT-175B logbook rate: 1.5% of instances
	// fail per day.
	OPTFailureModel = failure.OPTModel
	// FixedFailureRate builds a deterministic failure schedule.
	FixedFailureRate = failure.FixedRate
)

// CloudConfig configures the machine-replacement operator.
type CloudConfig = cloud.Config

// DefaultCloudConfig is the EC2-ASG behavior measured in §7.3
// (4–7 minute provisioning).
var DefaultCloudConfig = cloud.DefaultConfig

// Catalog access.
var (
	// Models returns the Table 2 model configurations.
	Models = model.Table2
	// Instances returns the Table 1 instance catalog.
	Instances = cluster.Table1
)
