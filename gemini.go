// Package gemini is a simulation-grade reproduction of "GEMINI: Fast
// Failure Recovery in Distributed Training with In-Memory Checkpoints"
// (SOSP 2023): checkpoint large-model training state into the CPU memory
// of the training machines themselves — placed by a provably
// near-optimal replica strategy and transmitted inside the network's
// idle timespans — so failure recovery takes seconds instead of tens of
// minutes.
//
// The package exposes the whole system the paper describes:
//
//   - Placement (Algorithm 1): group/ring/mixed checkpoint placement with
//     the Theorem 1 optimality analysis and Corollary 1 probabilities.
//   - Traffic scheduling (Algorithm 2): partition checkpoints into the
//     profiled idle spans of the ZeRO-3 iteration timeline and pipeline
//     them through GPU sub-buffers.
//   - A deterministic discrete-event substrate (virtual clock, max-min
//     fair network fabric, GPU→CPU copy channels) standing in for the
//     paper's A100/V100 testbed.
//   - The failure-recovery control plane: worker/root agents, an
//     etcd-like lease/watch/election store, cloud-operator machine
//     replacement, and the three recovery paths (local, peer, remote).
//   - The evaluation harness reproducing every table and figure of §7.
//
// # Quickstart
//
//	job, err := gemini.NewJob(gemini.JobSpec{
//		Model:    "GPT-2 100B",
//		Instance: "p4d.24xlarge",
//		Machines: 16,
//	})
//	if err != nil { ... }
//	fmt.Println(job.Timeline.Iteration)        // ≈62 s
//	fmt.Println(job.RecoveryProbability(2))    // 0.933
//	res, _ := job.ExecuteScheme(gemini.SchemeGemini)
//	fmt.Println(res.Overhead())                // ≈0
//
// See the examples/ directory for runnable end-to-end scenarios and
// cmd/benchtables for the paper's tables and figures.
package gemini

import (
	"context"
	"fmt"
	"io"

	"gemini/internal/agent"
	"gemini/internal/baselines"
	"gemini/internal/chaos"
	"gemini/internal/cloud"
	"gemini/internal/cluster"
	"gemini/internal/core"
	"gemini/internal/derive"
	"gemini/internal/failure"
	"gemini/internal/metrics"
	"gemini/internal/model"
	"gemini/internal/obs"
	"gemini/internal/placement"
	"gemini/internal/runsim"
	"gemini/internal/scenario"
	"gemini/internal/schedule"
	"gemini/internal/simclock"
	"gemini/internal/strategy"
	"gemini/internal/trace"
	"gemini/internal/training"
)

// Core job API.
type (
	// JobSpec names a training job: a Table 2 model, a Table 1 instance
	// type, the machine count, and the checkpoint replica count.
	JobSpec = core.JobSpec
	// Job is a fully derived GEMINI deployment: placement, profiled
	// timeline, checkpoint plan, and solution specs.
	Job = core.Job
)

// Option tweaks a JobSpec before derivation. Options override the
// corresponding JobSpec fields, so a spec can stay a three-field literal
// (model, instance, machines) with everything else supplied here. An
// option's argument is validated when NewJob applies it, so a bad value
// fails job construction with a descriptive error instead of
// misbehaving deep inside a run.
type Option func(*JobSpec) error

// WithReplicas sets the checkpoint replica count m (default 2).
func WithReplicas(m int) Option {
	return func(s *JobSpec) error {
		if m < 1 {
			return fmt.Errorf("gemini: WithReplicas(%d): replica count must be ≥ 1", m)
		}
		s.Replicas = m
		return nil
	}
}

// WithRemoteBandwidth sets the persistent store's aggregate bandwidth in
// bytes per second (default 20 Gbps, the paper's FSx setup).
func WithRemoteBandwidth(bytesPerSec float64) Option {
	return func(s *JobSpec) error {
		if bytesPerSec <= 0 {
			return fmt.Errorf("gemini: WithRemoteBandwidth(%v): bandwidth must be positive", bytesPerSec)
		}
		s.RemoteBandwidth = bytesPerSec
		return nil
	}
}

// WithParallelism selects the distribution strategy (default ZeRO-3).
func WithParallelism(p Parallelism) Option {
	return func(s *JobSpec) error {
		s.Parallelism = p
		return nil
	}
}

// WithFaults attaches a fault schedule to the job; Job.RecoverySystem
// arms it automatically. Build one with Faults().
func WithFaults(fs FaultSchedule) Option {
	return func(s *JobSpec) error {
		if fs == nil {
			return fmt.Errorf("gemini: WithFaults(nil): build a schedule with Faults() — an empty schedule needs no option")
		}
		s.Faults = fs
		return nil
	}
}

// WithStrategy selects the named checkpoint strategy the recovery
// system runs — one of StrategyNames(): "gemini" (the paper's scheme,
// the default), "tiered" (GPU-buffer → CPU → remote ladder), "sparse"
// (delta/changed-shards-only commits), or "adaptive" (switches among
// them at runtime from the observed failure stream).
func WithStrategy(name string) Option {
	return func(s *JobSpec) error {
		if _, err := strategy.New(name); err != nil {
			return err
		}
		s.Strategy = name
		return nil
	}
}

// WithTracer attaches a structured tracer to the job: every run the job
// starts — the interference executor, the recovery control plane —
// records its spans, instants, and counter samples on it.
func WithTracer(tr *Tracer) Option {
	return func(s *JobSpec) error {
		if tr == nil {
			return fmt.Errorf("gemini: WithTracer(nil): omit the option to run untraced")
		}
		s.Tracer = tr
		return nil
	}
}

// WithMetrics attaches a metrics registry to the job: every run fills
// it with its instruments (training.* from the executor, health.* and
// strategy.* from the control plane).
func WithMetrics(reg *MetricsRegistry) Option {
	return func(s *JobSpec) error {
		if reg == nil {
			return fmt.Errorf("gemini: WithMetrics(nil): omit the option to run unmonitored")
		}
		s.Metrics = reg
		return nil
	}
}

// WithoutDerivationCache makes this job derive its artifacts privately
// instead of resolving them through the shared derivation cache. The
// cached and uncached paths produce bit-identical jobs; opt out only to
// isolate a job's artifacts (e.g. when deliberately mutating them in an
// experiment) or to benchmark cold derivation itself.
func WithoutDerivationCache() Option {
	return func(s *JobSpec) error {
		s.NoCache = true
		return nil
	}
}

// StrategyNames returns the registered checkpoint strategy names,
// sorted — the valid arguments to WithStrategy.
func StrategyNames() []string { return strategy.Names() }

// NewJob derives a GEMINI deployment from a job spec, validating GPU and
// CPU memory budgets, option arguments, the strategy name, and any
// attached fault schedule.
func NewJob(spec JobSpec, opts ...Option) (*Job, error) {
	for _, opt := range opts {
		if err := opt(&spec); err != nil {
			return nil, err
		}
	}
	return core.NewJob(spec)
}

// MustNewJob is NewJob for known-good specs.
func MustNewJob(spec JobSpec, opts ...Option) *Job {
	j, err := NewJob(spec, opts...)
	if err != nil {
		panic(err)
	}
	return j
}

// Virtual time.
type (
	// Time is virtual seconds since simulation start.
	Time = simclock.Time
	// Duration is a span of virtual time in seconds.
	Duration = simclock.Duration
)

// Duration units.
const (
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
	Minute      = simclock.Minute
	Hour        = simclock.Hour
	Day         = simclock.Day
)

// Checkpoint placement (Algorithm 1 and its analysis).
type Placement = placement.Placement

// FailSet is the bitset failure-set representation of the availability
// kernel: callers that evaluate many failure scenarios (stress
// campaigns, custom estimators) keep one FailSet plus a failed-rank
// list and call Placement.SurvivesFailed — O(k·m) per check instead of
// the map-accepting Survives wrapper's conversion. See DESIGN.md §11.
type FailSet = placement.FailSet

// NewFailSet returns an empty failure bitset for ranks 0..n-1.
func NewFailSet(n int) FailSet { return placement.NewFailSet(n) }

// NewPlacement is Algorithm 1: group placement when m | N, otherwise
// group + trailing ring.
func NewPlacement(n, m int) (*Placement, error) { return placement.Mixed(n, m) }

// NewRingPlacement is the pure ring strategy the paper compares against
// in Figure 9.
func NewRingPlacement(n, m int) (*Placement, error) { return placement.Ring(n, m) }

// NewRackAwarePlacement spreads every replica group across m racks of
// rackSize machines each, so no single-rack failure can wipe a whole
// group. Requires rackSize | n and m | (n / rackSize).
func NewRackAwarePlacement(n, m, rackSize int) (*Placement, error) {
	return placement.RackAware(n, m, rackSize)
}

// Racks partitions ranks 0..n-1 into racks of rackSize consecutive
// machines — the correlated failure domains for
// CorrelatedRecoveryProbability.
func Racks(n, rackSize int) ([][]int, error) { return placement.Racks(n, rackSize) }

// Corollary1 is the closed-form CPU-memory recovery probability for the
// group strategy.
func Corollary1(n, m, k int) (float64, error) { return placement.Corollary1(n, m, k) }

// RecoveryProbabilityExact enumerates a placement's recovery probability
// under k simultaneous independent failures (N ≤ 31).
func RecoveryProbabilityExact(p *Placement, k int) float64 {
	return placement.BitmaskProbability(p, k)
}

// RecoveryProbabilityMonteCarlo estimates it for large clusters. Trials
// run sharded across GOMAXPROCS workers; the estimate depends only on
// (p, k, trials, seed), never on the worker count.
func RecoveryProbabilityMonteCarlo(p *Placement, k, trials int, seed int64) float64 {
	return placement.MonteCarlo(p, k, trials, seed)
}

// RecoveryProbabilityMonteCarloWorkers is RecoveryProbabilityMonteCarlo
// with an explicit worker count (≤ 0 means GOMAXPROCS); any worker count
// yields the identical estimate.
func RecoveryProbabilityMonteCarloWorkers(p *Placement, k, trials int, seed int64, workers int) float64 {
	return placement.MonteCarloWorkers(p, k, trials, seed, workers)
}

// CorrelatedRecoveryProbability is the rack-level analogue of
// RecoveryProbabilityExact: the probability that a placement survives k
// whole racks failing together, over all equally likely k-subsets of
// racks.
func CorrelatedRecoveryProbability(p *Placement, racks [][]int, k int) (float64, error) {
	return placement.CorrelatedProbability(p, racks, k)
}

// Interleaving schemes of §7.4 (Figure 16).
type Scheme = schedule.Scheme

// Scheme values.
const (
	SchemeBaseline   = schedule.SchemeBaseline
	SchemeBlocking   = schedule.SchemeBlocking
	SchemeNaive      = schedule.SchemeNaive
	SchemeNoPipeline = schedule.SchemeNoPipeline
	SchemeGemini     = schedule.SchemeGemini
)

// ExecResult is what the interference executor measures for a scheme.
type ExecResult = training.ExecResult

// Parallelism selects the distribution strategy (§9 extension).
type Parallelism = training.Parallelism

// Parallelism values.
const (
	ParallelismZeRO3    = training.ZeRO3
	ParallelismData     = training.DataParallel
	ParallelismPipeline = training.PipelineParallel
)

// Checkpointing solutions (§7.1) and failure economics (§7.3).
type (
	// Spec describes one checkpointing solution's behavior.
	Spec = baselines.Spec
	// RunResult is the long-run effective-training-time accounting.
	RunResult = runsim.Result
	// FailureSchedule is a time-ordered list of injected failures.
	FailureSchedule = failure.Schedule
	// FailureModel is a stochastic per-instance failure-rate model.
	FailureModel = failure.Model
	// FailureEvent is one injected failure.
	FailureEvent = failure.Event
)

// Failure kinds (§6.1).
const (
	SoftwareFailure = cluster.SoftwareFailed
	HardwareFailure = cluster.HardwareFailed
)

// RecoverySource says which storage tier a recovery reads from.
type RecoverySource = baselines.RecoverySource

// Recovery sources, fastest first (§3.1's hierarchy).
const (
	FromLocalCPU         = baselines.FromLocal
	FromPeerCPU          = baselines.FromPeer
	FromPersistentRemote = baselines.FromRemote
)

// OPTFailureModel is the OPT-175B logbook rate: 1.5% of instances fail
// per day.
func OPTFailureModel() FailureModel { return failure.OPTModel() }

// FixedFailureRate builds a deterministic failure schedule: n machines,
// a daily failure rate, a hardware fraction, over a horizon.
func FixedFailureRate(n int, failuresPerDay, hwFraction float64, horizon Duration) (FailureSchedule, error) {
	return failure.FixedRate(n, failuresPerDay, hwFraction, horizon)
}

// CloudConfig configures the machine-replacement operator.
type CloudConfig = cloud.Config

// DefaultCloudConfig is the EC2-ASG behavior measured in §7.3
// (4–7 minute provisioning).
func DefaultCloudConfig() CloudConfig { return cloud.DefaultConfig() }

// Catalog entries.
type (
	// ModelConfig is one Table 2 model configuration.
	ModelConfig = model.Config
	// InstanceType is one Table 1 machine type.
	InstanceType = cluster.InstanceType
)

// Models returns the Table 2 model configurations.
func Models() []ModelConfig { return model.Table2() }

// Instances returns the Table 1 instance catalog.
func Instances() []InstanceType { return cluster.Table1() }

// Fault injection (the chaos engine). A FaultSchedule is a declarative,
// deterministic list of faults — crashes, correlated rack failures,
// network partitions, stragglers, key-value store outages, lease jitter
// — validated at job construction and armed automatically by
// Job.RecoverySystem:
//
//	sched := gemini.Faults().
//		Partition(190*gemini.Second, 4*gemini.Minute, 3, 5).
//		CrashGroup(190*gemini.Second, gemini.HardwareFailure, 2, 4).
//		MustBuild(16)
//	job := gemini.MustNewJob(spec, gemini.WithFaults(sched))
//	engine, sys, _ := job.RecoverySystem(gemini.DefaultCloudConfig())
//	sys.Start()
//	engine.Run(2 * gemini.Hour)
//	_ = sys.Log() // the trace records every injection and recovery step
type (
	// FaultSchedule is a sorted, validated chaos schedule.
	FaultSchedule = chaos.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = chaos.Event
	// FaultKind enumerates fault event kinds.
	FaultKind = chaos.Kind
	// FaultBuilder composes fault schedules fluently.
	FaultBuilder = chaos.Builder
)

// Fault kinds, for hand-built FaultEvent values; the builder is the
// usual way to produce them.
const (
	FaultPartitionHeal   = chaos.KindPartitionHeal
	FaultKVRestore       = chaos.KindKVRestore
	FaultStragglerEnd    = chaos.KindStragglerEnd
	FaultPartitionStart  = chaos.KindPartitionStart
	FaultKVOutage        = chaos.KindKVOutage
	FaultStragglerStart  = chaos.KindStragglerStart
	FaultLeaseJitter     = chaos.KindLeaseJitter
	FaultCrash           = chaos.KindCrash
	FaultCorrelatedCrash = chaos.KindCorrelatedCrash
)

// Faults starts a fluent fault-schedule builder.
func Faults() *FaultBuilder { return chaos.NewBuilder() }

// Trace events (what recovery systems log).
type (
	// TraceLog is the append-only simulation event log.
	TraceLog = trace.Log
	// TraceEvent is one logged event.
	TraceEvent = trace.Event
)

// Structured observability: span tracing with Chrome trace-event
// (Perfetto-loadable) export.
type (
	// Tracer collects one run's spans, instants, and counter samples on
	// named tracks. Nil = disabled and free. Not concurrency-safe: give
	// each run its own tracer and merge them at export.
	Tracer = trace.Tracer
	// TraceStats summarizes an exported trace document.
	TraceStats = trace.JSONStats
)

// NewTracer creates an empty tracer. The simulation installs its clock
// when the tracer is attached (Job.ExecuteSchemeTraced, System.SetTracer,
// Fabric.SetTracer).
func NewTracer() *Tracer { return trace.NewTracer(nil) }

// WriteTrace renders the tracers as one Chrome trace-event JSON document,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteTrace(w io.Writer, tracers ...*Tracer) error { return trace.WriteJSON(w, tracers...) }

// TraceStatsFromJSON parses an exported trace and summarizes its event
// and category counts.
func TraceStatsFromJSON(data []byte) (*TraceStats, error) { return trace.StatsFromJSON(data) }

// Run health monitoring: live metric instruments, a sim-time series
// recorder, and Prometheus / CSV export. Attach a registry to the
// control plane with System.SetMetrics (health.* gauges, the Eq. 1
// wasted-time histograms) or to the executor via
// Job.ExecuteSchemeObserved (training.* instruments); a Recorder
// samples watched instruments on a sim-time cadence for timeline
// export. Monitoring is a pure observer — a monitored run replays
// bit-identically.
type (
	// MetricsRegistry holds one run's named live instruments.
	MetricsRegistry = metrics.Registry
	// MetricsRecorder samples watched instruments into sim-time series.
	MetricsRecorder = metrics.Recorder
	// MetricsSeries is one instrument's sampled timeline (a ring buffer).
	MetricsSeries = metrics.Series
	// MetricsSnapshot is a finished, ordered name=value rendering.
	MetricsSnapshot = metrics.CounterSet
	// HealthEvent is one failure's Eq. 1 wasted-time record, from
	// System.WastedEvents.
	HealthEvent = agent.WastedEvent
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMetricsRecorder creates a recorder over reg keeping the newest
// capacity samples per watched instrument. Call Watch with instrument
// names, then Start it on the run's engine.
func NewMetricsRecorder(reg *MetricsRegistry, capacity int) *MetricsRecorder {
	return metrics.NewRecorder(reg, capacity)
}

// WriteMetricsProm renders the registry's instruments in Prometheus text
// exposition format: counters, gauges, and native histograms with
// cumulative `le` buckets (the +Inf bucket always equals _count, as
// cmd/promcheck enforces).
func WriteMetricsProm(w io.Writer, reg *MetricsRegistry) error { return metrics.WriteProm(w, reg) }

// WriteTimelineCSV renders the recorder's sampled series as a CSV
// timeline: a time column plus one column per watched instrument.
func WriteTimelineCSV(w io.Writer, rec *MetricsRecorder) error { return metrics.WriteCSV(w, rec) }

// CacheStats is a point-in-time snapshot of the shared derivation
// cache's counters (hits, misses, evictions, resident entries).
type CacheStats = derive.Stats

// DerivationCacheStats snapshots the shared derivation cache that
// NewJob resolves artifacts through. A campaign over few distinct specs
// should show a hit rate near 1; see DESIGN.md §12.
func DerivationCacheStats() CacheStats { return derive.Shared().Stats() }

// ExportDerivationCacheMetrics writes the shared derivation cache's
// counters into reg as derive.cache.* instruments (a snapshot copy —
// the registry stays single-threaded). Call it again to refresh.
func ExportDerivationCacheMetrics(reg *MetricsRegistry) { derive.Shared().Export(reg) }

// Scenario aliases expose the declarative front door: a YAML/JSON file
// describing a job, fleet, failure model, chaos schedule and solutions,
// compiled onto the simulator and expanded into a seeded campaign. See
// examples/scenarios and DESIGN.md §13.
type (
	// Scenario is one parsed scenario file.
	Scenario = scenario.Scenario
	// CompiledScenario is a scenario lowered onto the simulator.
	CompiledScenario = scenario.Compiled
	// CampaignOptions tunes a campaign run (workers, variation override).
	CampaignOptions = scenario.CampaignOptions
	// CampaignReport is a campaign's deterministic aggregate result.
	CampaignReport = scenario.Report
)

// LoadScenario reads and validates a scenario file (YAML or JSON,
// sniffed by content).
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario decodes and validates scenario bytes.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunCampaign expands a compiled scenario (Scenario.Compile) into its
// seeded variations and aggregates them; the report is byte-identical
// for a fixed seed at any worker count.
func RunCampaign(ctx context.Context, c *CompiledScenario, opts CampaignOptions) (*CampaignReport, error) {
	return scenario.RunCampaign(ctx, c, opts)
}

// Campaign observability: a concurrent-safe progress sink and live
// registry that workers update while a campaign runs, an HTTP server
// exposing both, and the post-campaign flight recorder. See DESIGN.md
// §14 and examples/campaignobs.
type (
	// CampaignProgress counts campaign work live; safe for any number of
	// concurrent writers and readers, nil-disabled.
	CampaignProgress = obs.Progress
	// ProgressSnapshot is a point-in-time view of campaign progress.
	ProgressSnapshot = obs.Snapshot
	// LiveRegistry is a mutex-guarded registry workers merge per-run
	// results into, for serving while a campaign runs. Arrival-order —
	// use the report's deterministic rollup for goldens.
	LiveRegistry = obs.SyncRegistry
	// ObsServer serves /metrics, /progress and /debug/pprof over HTTP.
	ObsServer = obs.Server
	// RunRecord is one (variation, spec) outcome kept for the flight
	// recorder (CampaignOptions.RecordRuns).
	RunRecord = scenario.RunRecord
	// FlightRun is one outlier re-executed with full observability
	// attached; it carries the trace, registry and timeline writers.
	FlightRun = scenario.FlightRun
	// TraceLintIssue is one structural defect trace linting found.
	TraceLintIssue = trace.LintIssue
)

// NewCampaignProgress returns an enabled campaign progress sink for
// CampaignOptions.Progress.
func NewCampaignProgress() *CampaignProgress { return obs.NewProgress() }

// NewLiveRegistry returns an enabled live registry for
// CampaignOptions.Live.
func NewLiveRegistry() *LiveRegistry { return obs.NewSyncRegistry() }

// ServeObservability starts the campaign observability HTTP server on
// addr (":0" picks a free port; read it back with Addr). Either
// argument may be nil.
func ServeObservability(addr string, prog *CampaignProgress, live *LiveRegistry) (*ObsServer, error) {
	return obs.NewServer(addr, prog, live)
}

// FlightKeys lists the badness rankings CampaignOutliers accepts.
func FlightKeys() []string { return append([]string(nil), scenario.FlightKeys...) }

// CampaignOutliers ranks a report's recorded runs (RecordRuns must have
// been set) by the given key and returns the worst k.
func CampaignOutliers(rep *CampaignReport, key string, k int) ([]RunRecord, error) {
	return scenario.Outliers(rep, key, k)
}

// ReplayRun deterministically re-executes a recorded run with tracer,
// metrics and timeline taps attached, erroring if the re-run's outcome
// differs from the record in any bit.
func ReplayRun(c *CompiledScenario, rec RunRecord) (*FlightRun, error) { return c.Replay(rec) }

// LintTrace checks an exported trace JSON document for structural
// defects: unbalanced begin/end span nesting and counter samples on
// unnamed tracks. Traces written by WriteTrace always lint clean.
func LintTrace(data []byte) ([]TraceLintIssue, error) { return trace.Lint(data) }

// WriteCampaignHTML renders the report as a self-contained HTML page.
func WriteCampaignHTML(w io.Writer, r *CampaignReport) error { return scenario.WriteHTML(w, r) }
