package gemini

import (
	"reflect"
	"strings"
	"testing"
)

// Option arguments are validated when NewJob applies them: a bad value
// must fail job construction with a descriptive error naming the
// option, never misbehave deep inside a run.
func TestOptionArgumentsValidatedAtNewJob(t *testing.T) {
	spec := JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16}
	cases := []struct {
		name string
		opt  Option
		want string // substring the error must carry
	}{
		{"replicas zero", WithReplicas(0), "WithReplicas(0)"},
		{"replicas negative", WithReplicas(-2), "WithReplicas(-2)"},
		{"remote bandwidth zero", WithRemoteBandwidth(0), "WithRemoteBandwidth"},
		{"remote bandwidth negative", WithRemoteBandwidth(-1e9), "WithRemoteBandwidth"},
		{"nil faults", WithFaults(nil), "WithFaults(nil)"},
		{"unknown strategy", WithStrategy("raid0"), `unknown strategy "raid0"`},
		{"empty strategy", WithStrategy(""), "unknown strategy"},
		{"nil tracer", WithTracer(nil), "WithTracer(nil)"},
		{"nil metrics", WithMetrics(nil), "WithMetrics(nil)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewJob(spec, tc.opt)
			if err == nil {
				t.Fatalf("NewJob accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStrategyNamesExposed(t *testing.T) {
	want := []string{"adaptive", "gemini", "sparse", "tiered"}
	if got := StrategyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StrategyNames() = %v, want %v", got, want)
	}
}

// Every registered strategy name must survive the full facade path:
// option validation, job derivation, and control-plane assembly.
func TestWithStrategyReachesRecoverySystem(t *testing.T) {
	for _, name := range StrategyNames() {
		job, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
			WithStrategy(name))
		if err != nil {
			t.Fatalf("NewJob(WithStrategy(%q)): %v", name, err)
		}
		if job.Spec.Strategy != name {
			t.Fatalf("spec carries strategy %q, want %q", job.Spec.Strategy, name)
		}
		engine, sys, err := job.RecoverySystem(DefaultCloudConfig())
		if err != nil {
			t.Fatalf("RecoverySystem(%q): %v", name, err)
		}
		if got := sys.Strategy().Name(); got != name {
			t.Fatalf("system runs strategy %q, want %q", got, name)
		}
		sys.Start()
		engine.Run(Time(5 * job.Timeline.Iteration))
		if sys.Iteration() == 0 {
			t.Fatalf("strategy %q: training never advanced", name)
		}
	}
}

// WithoutDerivationCache must opt the job out of the shared cache (its
// artifacts are private pointers) while staying bit-identical to the
// cached derivation, and the facade stats/export surface must reflect
// cache traffic.
func TestWithoutDerivationCacheAndStatsSurface(t *testing.T) {
	spec := JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16}
	cached, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	before := DerivationCacheStats()
	private, err := NewJob(spec, WithoutDerivationCache())
	if err != nil {
		t.Fatal(err)
	}
	after := DerivationCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("WithoutDerivationCache touched the shared cache: %+v → %+v", before, after)
	}
	if private.Timeline == cached.Timeline {
		t.Fatal("WithoutDerivationCache returned the shared Timeline pointer")
	}
	if !reflect.DeepEqual(private.Timeline, cached.Timeline) ||
		!reflect.DeepEqual(private.Plan, cached.Plan) {
		t.Fatal("uncached derivation diverged from the cached artifacts")
	}

	reg := NewMetricsRegistry()
	ExportDerivationCacheMetrics(reg)
	found := false
	for _, kv := range reg.Snapshot() {
		if strings.HasPrefix(kv.Name, "derive.cache.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("ExportDerivationCacheMetrics left no derive.cache.* instruments")
	}
}

// WithTracer/WithMetrics attach through the spec: RecoverySystem wires
// them in and ExecuteScheme picks them up, replacing the deprecated
// ExecuteSchemeObserved entry point and the loose setters.
func TestObservabilityOptionsAttach(t *testing.T) {
	tr := NewTracer()
	reg := NewMetricsRegistry()
	job, err := NewJob(JobSpec{Model: "GPT-2 40B", Instance: "p3dn.24xlarge", Machines: 16},
		WithTracer(tr), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	engine, sys, err := job.RecoverySystem(DefaultCloudConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	engine.Run(Time(3 * job.Timeline.Iteration))
	snap := reg.Snapshot()
	if len(snap) == 0 {
		t.Fatal("WithMetrics registry stayed empty after a monitored run")
	}
	found := false
	for _, kv := range snap {
		if strings.HasPrefix(kv.Name, "health.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no health.* instruments in %v", snap)
	}
	if _, err := job.ExecuteScheme(SchemeGemini); err != nil {
		t.Fatal(err)
	}
}
