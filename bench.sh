#!/bin/sh
# Benchmark suite runner: executes every Benchmark* three times with
# allocation stats and records the raw `go test -json` event stream in
# BENCH_<date>.json, so runs on different machines/dates can be diffed
# (e.g. with benchstat fed from the "Output" fields). This includes the
# observability pair (BenchmarkControlPlaneMonitor{Off,On}), the
# per-strategy overhead set (BenchmarkControlPlaneStrategy/<name>), and
# the availability-kernel set (BenchmarkMonteCarloN10000/N50000,
# BenchmarkSurvivesFailed, BenchmarkBuildTimeline,
# BenchmarkProfileWithJitter) whose numbers back the EXPERIMENTS.md
# overhead and kernel tables.
#
# Usage:
#   ./bench.sh                # full suite, -count=3
#   ./bench.sh -benchtime=1x  # extra args are passed to `go test`
set -eu

out="BENCH_$(date +%Y-%m-%d).json"
echo "writing $out" >&2
go test -json -run='^$' -bench=. -benchmem -count=3 "$@" ./... >"$out"
grep -c '"Action":"output"' "$out" >/dev/null || {
	echo "bench run produced no output events" >&2
	exit 1
}
echo "done: $out" >&2
