#!/bin/sh
# Benchmark suite runner: executes every Benchmark* three times with
# allocation stats and records the raw `go test -json` event stream in
# BENCH_<date>.json, so runs on different machines/dates can be diffed
# (e.g. with benchstat fed from the "Output" fields). This includes the
# observability pair (BenchmarkControlPlaneMonitor{Off,On}), the
# per-strategy overhead set (BenchmarkControlPlaneStrategy/<name>), and
# the availability-kernel set (BenchmarkMonteCarloN10000/N50000,
# BenchmarkSurvivesFailed, BenchmarkBuildTimeline,
# BenchmarkProfileWithJitter) whose numbers back the EXPERIMENTS.md
# overhead and kernel tables.
#
# Usage:
#   ./bench.sh                # full suite, -count=3
#   ./bench.sh -benchtime=1x  # extra args are passed to `go test`
#
# Snapshots are never overwritten: a second run on the same date writes
# BENCH_<date>.1.json, then .2.json, and so on. Compare any two with
#   go run ./cmd/benchdiff -threshold 10 OLD.json NEW.json
# (threshold gates ns/op regressions and exits 1; use -threshold -1 for
# report-only when the snapshots come from different machines).
set -eu

out="BENCH_$(date +%Y-%m-%d).json"
n=0
while [ -e "$out" ]; do
	n=$((n + 1))
	out="BENCH_$(date +%Y-%m-%d).$n.json"
done
echo "writing $out" >&2
go test -json -run='^$' -bench=. -benchmem -count=3 "$@" ./... >"$out"
grep -c '"Action":"output"' "$out" >/dev/null || {
	echo "bench run produced no output events" >&2
	exit 1
}
echo "done: $out" >&2
