#!/bin/sh
# CI gate: build, vet, the full test suite under the race detector, and
# a one-iteration benchmark smoke run (benchmarks are part of the paper
# reproduction — they must at least still execute).
set -eux

go build ./...
go vet ./...
go test -race ./...
go test -run='^$' -bench=. -benchtime=1x -benchmem ./...

# Fabric perf gates, outside the race detector (race instrumentation
# allocates): steady-state fabric events must stay allocation-free, and
# the fabric benchmarks must still run at every scale.
go test -run='^TestSteadyStateFabricEventsDoNotAllocate$' -count=1 ./internal/netsim
go test -run='^$' -bench='^BenchmarkFabricRing' -benchtime=1x -benchmem ./internal/netsim
