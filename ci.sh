#!/bin/sh
# CI gate: build, vet, the full test suite under the race detector, and
# a one-iteration benchmark smoke run (benchmarks are part of the paper
# reproduction — they must at least still execute).
set -eux

go build ./...
go vet ./...
go test -race ./...
go test -run='^$' -bench=. -benchtime=1x -benchmem ./...

# Fabric perf gates, outside the race detector (race instrumentation
# allocates): steady-state fabric events must stay allocation-free, and
# the fabric benchmarks must still run at every scale.
go test -run='^TestSteadyStateFabricEventsDoNotAllocate$' -count=1 ./internal/netsim
go test -run='^$' -bench='^BenchmarkFabricRing' -benchtime=1x -benchmem ./internal/netsim

# Availability-kernel perf gates (outside the race detector): the
# steady-state Monte-Carlo shard must allocate exactly 0 bytes per trial
# and the kernel probe itself must stay allocation-free, the 10k-machine
# placement benchmark must still run, and the profiling loop must stay
# allocation-flat (comm ops hoisted, labels interned).
go test -run='^TestMonteCarloShardSteadyStateAllocsZero$|^TestSurvivesFailedAllocsZero$' -count=1 ./internal/placement
go test -run='^$' -bench='^BenchmarkMonteCarloN10000$|^BenchmarkSurvivesFailed$' -benchtime=1x -benchmem ./internal/placement
go test -run='^TestProfileWithJitterAllocationFlat$|^TestBuildTimelineSteadyStateAllocs$' -count=1 ./internal/training

# Observability gates. Disabled tracing and metrics must stay
# allocation-free (also outside the race detector), and the geminisim
# -trace export must parse as Chrome trace JSON with events from at
# least four subsystems — a refactor that silently unwires a
# subsystem's tracing fails here instead of shipping an empty track.
go test -run='^TestDisabledTracingAllocsZero$' -count=1 ./internal/trace
go test -run='^TestHistogramObserveAllocsZero$' -count=1 ./internal/metrics
go test -run='^TestRecorderSampleAllocsZero$' -count=1 ./internal/metrics
TRACE_OUT="$(mktemp -t geminitrace.XXXXXX.json)"
go run ./cmd/geminisim -days 1 -trace "$TRACE_OUT" > /dev/null
go run ./cmd/tracelint -min-categories 4 -min-events 1000 "$TRACE_OUT"
rm -f "$TRACE_OUT"

# Health-monitor export gates: the -metrics Prometheus exposition must
# validate with enough metric families, and the -timeline CSV must be a
# well-formed monotone timeline with one row per sampled iteration.
PROM_OUT="$(mktemp -t geminiprom.XXXXXX.prom)"
CSV_OUT="$(mktemp -t geminitl.XXXXXX.csv)"
go run ./cmd/geminisim -days 1 -metrics "$PROM_OUT" -timeline "$CSV_OUT" > /dev/null
go run ./cmd/promcheck -prom "$PROM_OUT" -min-families 10 -csv "$CSV_OUT" -min-rows 20
rm -f "$PROM_OUT" "$CSV_OUT"

# Strategy gates: every registered checkpoint strategy must survive the
# geminisim control-plane smoke (-strategy is the registry's public
# surface), and an unknown name must fail at job construction instead
# of misbehaving mid-run.
for s in adaptive gemini sparse tiered; do
	go run ./cmd/geminisim -days 1 -strategy "$s" > /dev/null
done
if go run ./cmd/geminisim -days 1 -strategy no-such-strategy > /dev/null 2>&1; then
	echo "geminisim accepted an unknown strategy name" >&2
	exit 1
fi

# Campaign-engine gates (outside the race detector): a warm-key NewJob
# must stay fully cache-resident (≤ 2 allocs — any accidental
# re-derivation blows through by three orders of magnitude), the
# cold/warm campaign benchmark must still run, and benchdiff must parse
# a checked-in snapshot and agree a snapshot equals itself at
# threshold 0 (the derivation-cache race hammer already ran above,
# inside `go test -race ./...`).
go test -run='^TestNewJobWarmKeyAllocs$' -count=1 ./internal/core
go test -run='^$' -bench='^BenchmarkCampaign1000$' -benchtime=1x -benchmem .
BENCH_BASE="$(ls BENCH_*.json | sort | tail -1)"
go run ./cmd/benchdiff -threshold 0 "$BENCH_BASE" "$BENCH_BASE" > /dev/null

# Scenario-engine gates: both checked-in scenarios must parse and
# compile, the 1k smoke must reproduce its pinned aggregate hash for
# seed 7 (any drift in the simulator, the report shape, or the scenario
# compiler fails here), and the 10k campaign's JSON and HTML reports
# must be byte-identical at workers=1 vs workers=8. geminisim's
# -scenario path must run the same campaign.
go run ./cmd/campaign -validate examples/scenarios/smoke-1k.yaml
go run ./cmd/campaign -validate examples/scenarios/chaos-10k.yaml
CAMP_DIR="$(mktemp -d -t geminicamp.XXXXXX)"
go run ./cmd/campaign -quiet -json "$CAMP_DIR/smoke.json" -html "$CAMP_DIR/smoke.html" examples/scenarios/smoke-1k.yaml
grep -q '"hash": "352980d25448928c30d66858cac44f4644e059fff2148565f8e6b55ca9739727"' "$CAMP_DIR/smoke.json"
go run ./cmd/campaign -quiet -workers 1 -aggregate -json "$CAMP_DIR/w1.json" -html "$CAMP_DIR/w1.html" -prom "$CAMP_DIR/w1.prom" examples/scenarios/chaos-10k.yaml
go run ./cmd/campaign -quiet -workers 8 -aggregate -json "$CAMP_DIR/w8.json" -html "$CAMP_DIR/w8.html" -prom "$CAMP_DIR/w8.prom" examples/scenarios/chaos-10k.yaml
cmp "$CAMP_DIR/w1.json" "$CAMP_DIR/w8.json"
cmp "$CAMP_DIR/w1.html" "$CAMP_DIR/w8.html"
cmp "$CAMP_DIR/w1.prom" "$CAMP_DIR/w8.prom"
rm -rf "$CAMP_DIR"
go run ./cmd/geminisim -scenario examples/scenarios/smoke-1k.yaml > /dev/null

# Campaign-observability gates. The disabled progress sink and the zero
# runsim Observer must add no allocations to the hot paths (outside the
# race detector); the aggregated campaign exposition for the 1k smoke is
# pinned by sha256 (any drift in the run.* instruments, the merge order,
# or the histogram exposition fails here) and must satisfy promcheck's
# histogram contract; and the flight recorder must replay the two worst
# smoke runs to bit-equal outcomes with lint-clean traces and monotone
# timelines.
go test -run='^TestProgressAllocsZero$' -count=1 ./internal/obs
go test -run='^TestRunZeroObserverAllocs$' -count=1 ./internal/runsim
OBS_DIR="$(mktemp -d -t geminiobs.XXXXXX)"
go run ./cmd/campaign -quiet -progress -aggregate -prom "$OBS_DIR/agg.prom" -json "$OBS_DIR/agg.json" examples/scenarios/smoke-1k.yaml 2> /dev/null
echo "c3b35edc0d0e7f9f0422845ae678c066a11e9ae326c42b9bb58551c073fa1aea  $OBS_DIR/agg.prom" | sha256sum -c - > /dev/null
go run ./cmd/promcheck -prom "$OBS_DIR/agg.prom" -min-families 10
go run ./cmd/campaign -quiet -flight 2 -flight-key wasted -flight-dir "$OBS_DIR" -json /dev/null examples/scenarios/smoke-1k.yaml
for k in 0 1; do
	go run ./cmd/tracelint -structure-only "$OBS_DIR/outlier-$k.trace.json"
	go run ./cmd/promcheck -prom "$OBS_DIR/outlier-$k.prom" -csv "$OBS_DIR/outlier-$k.timeline.csv" -min-rows 2
done
rm -rf "$OBS_DIR"

# Facade gates: the examples are the documented surface of the options
# API (WithStrategy/WithTracer/WithMetrics) and must keep running, and
# the deprecated observability shims must stay until their removal is
# deliberate — callers migrate on their own schedule.
go run ./examples/quickstart > /dev/null
EX_DIR="$(mktemp -d -t geminiex.XXXXXX)"
go build -o "$EX_DIR/observability" ./examples/observability
(cd "$EX_DIR" && ./observability > /dev/null)
rm -rf "$EX_DIR"
grep -q "func (j \*Job) ExecuteSchemeTraced" internal/core/core.go
grep -q "func (j \*Job) ExecuteSchemeObserved" internal/core/core.go
